//! Binary-search placement of a whole workload (paper §4).
//!
//! Search space: the number of servers `k` the new workload spreads over.
//! Smaller `k` = tighter packing = more overlap = more interference.
//! Assuming SLA satisfaction is monotone in `k` (more spread → less
//! interference), binary search finds the smallest SLA-safe `k` with
//! `O(log S)` predictor calls per function, checking one greedy
//! configuration per attempt: *the function with maximum resource
//! requirements goes to the server with the most available resources that
//! can still fit it*. A spread whose greedy configuration would overcommit
//! a server's CPU headroom is rejected as infeasible (recorded in the audit
//! trail), forcing the search toward wider spreads; every probe reuses one
//! featurization scratch buffer, so a whole search costs zero
//! feature-vector allocations beyond the first.

use cluster::Demand;
use gsight::{ColoWorkload, GsightPredictor, Scenario};
use obs::{AuditLog, CandidateEval, DecisionRecord};

/// Why a placement attempt produced no placement.
///
/// Replaces the old panics on empty candidate sets: a cluster where every
/// server is dead or full is a legitimate runtime state under fault
/// injection, not a programming error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The candidate server set was empty (every server in scope is dead,
    /// full, or excluded) — there is nothing to search.
    NoCandidates,
    /// Every feasible spread violated the SLA: the workload cannot be
    /// placed within this candidate set at this threshold.
    SlaUnsatisfiable,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoCandidates => write!(f, "no candidate servers to place on"),
            Self::SlaUnsatisfiable => write!(f, "no spread satisfies the SLA"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Result of a binary-search placement.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySearchOutcome {
    /// Chosen server per function of the new workload.
    pub placement: Vec<usize>,
    /// Number of distinct servers used.
    pub spread: usize,
    /// Predicted QoS of the new workload at the chosen placement.
    pub predicted_qos: f64,
    /// Number of predictor invocations performed.
    pub predictor_calls: usize,
}

/// Greedy configuration for a given spread `k`: repeatedly assign the
/// largest-demand function to the candidate server with the most remaining
/// CPU headroom *among those that can still fit it*. `candidates` are
/// ordered most-packed first, so taking the first `k` maximises overlap
/// with existing load. Only when no chosen candidate fits the function does
/// the packer fall back to the least-overcommitted server (most remaining
/// headroom) — the caller detects that overcommit via [`fits_headroom`]
/// and retries at a larger spread.
fn greedy_assign(
    demands: &[Demand],
    capacity: &Demand,
    headroom: &[f64],
    candidates: &[usize],
    k: usize,
) -> Vec<usize> {
    let chosen = &candidates[..k.min(candidates.len())];
    let mut remaining: Vec<(usize, f64)> = chosen.iter().map(|&s| (s, headroom[s])).collect();
    // Function order: biggest first.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .max_normalized(capacity)
            .partial_cmp(&demands[a].max_normalized(capacity))
            .expect("NaN demand")
    });
    let mut placement = vec![0usize; demands.len()];
    for f in order {
        let need = demands[f].get(cluster::Resource::Cpu);
        let best_fitting = remaining
            .iter()
            .enumerate()
            .filter(|(_, &(_, h))| h >= need)
            .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).expect("NaN headroom"))
            .map(|(slot, _)| slot);
        let slot = best_fitting.unwrap_or_else(|| {
            remaining
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).expect("NaN headroom"))
                .expect("k >= 1 candidate")
                .0
        });
        placement[f] = remaining[slot].0;
        remaining[slot].1 -= need;
    }
    placement
}

/// Whether `placement` keeps every server's assigned CPU within its
/// remaining headroom.
fn fits_headroom(demands: &[Demand], placement: &[usize], headroom: &[f64]) -> bool {
    let mut used = vec![0.0; headroom.len()];
    for (f, &s) in placement.iter().enumerate() {
        used[s] += demands[f].get(cluster::Resource::Cpu);
    }
    placement.iter().all(|&s| used[s] <= headroom[s] + 1e-9)
}

/// Place a new workload with binary search over its spread.
///
/// * `new_workload` — profile/class/demands of the workload to place; its
///   `placement` field is ignored and replaced by the search.
/// * `existing` — currently deployed workloads (with real placements).
/// * `candidates` — candidate servers ordered most-packed first (the
///   experiment builds this from live utilization).
/// * `headroom` — per-server remaining CPU (indexed by server id).
/// * `capacity` — one server's total capacity (for demand normalisation).
/// * `sla_min_qos` — the placement is accepted when the predicted QoS of
///   the new workload is at least this (IPC threshold from the
///   latency–IPC curve; use `f64::NEG_INFINITY` for BG workloads).
///
/// Returns [`PlacementError::SlaUnsatisfiable`] when even full spread
/// violates the SLA and [`PlacementError::NoCandidates`] when `candidates`
/// is empty (e.g. every server crashed).
#[allow(clippy::too_many_arguments)]
pub fn binary_search_placement(
    predictor: &GsightPredictor,
    new_workload: &ColoWorkload,
    existing: &[ColoWorkload],
    num_servers: usize,
    candidates: &[usize],
    headroom: &[f64],
    capacity: &Demand,
    sla_min_qos: f64,
) -> Result<BinarySearchOutcome, PlacementError> {
    search(
        predictor,
        new_workload,
        existing,
        num_servers,
        candidates,
        headroom,
        capacity,
        sla_min_qos,
    )
    .0
}

/// [`binary_search_placement`] plus an audit trail: appends one
/// [`DecisionRecord`] per call — every evaluated spread with its predicted
/// QoS and SLA verdict, and which probe (if any) was accepted. Rejected
/// placements are logged too.
#[allow(clippy::too_many_arguments)]
pub fn binary_search_placement_audited(
    predictor: &GsightPredictor,
    new_workload: &ColoWorkload,
    existing: &[ColoWorkload],
    num_servers: usize,
    candidates: &[usize],
    headroom: &[f64],
    capacity: &Demand,
    sla_min_qos: f64,
    at_ms: f64,
    workload_name: &str,
    audit: &mut AuditLog,
) -> Result<BinarySearchOutcome, PlacementError> {
    let (outcome, evaluated, chosen) = search(
        predictor,
        new_workload,
        existing,
        num_servers,
        candidates,
        headroom,
        capacity,
        sla_min_qos,
    );
    audit.push(DecisionRecord {
        at_ms,
        workload: workload_name.to_string(),
        sla_min_qos,
        predictor_calls: evaluated.len(),
        evaluated,
        chosen,
        degraded: false,
    });
    outcome
}

#[allow(clippy::too_many_arguments)]
fn search(
    predictor: &GsightPredictor,
    new_workload: &ColoWorkload,
    existing: &[ColoWorkload],
    num_servers: usize,
    candidates: &[usize],
    headroom: &[f64],
    capacity: &Demand,
    sla_min_qos: f64,
) -> (
    Result<BinarySearchOutcome, PlacementError>,
    Vec<CandidateEval>,
    Option<usize>,
) {
    if candidates.is_empty() {
        return (Err(PlacementError::NoCandidates), Vec::new(), None);
    }
    let mut evals: Vec<CandidateEval> = Vec::new();
    // One featurization scratch buffer for the whole search: every probe
    // reuses it instead of allocating a fresh 2580-dim vector.
    let mut scratch: Vec<f64> = Vec::new();
    let evaluate = |k: usize,
                    evals: &mut Vec<CandidateEval>,
                    scratch: &mut Vec<f64>|
     -> (Vec<usize>, f64, bool) {
        let placement = greedy_assign(&new_workload.demands, capacity, headroom, candidates, k);
        let feasible = fits_headroom(&new_workload.demands, &placement, headroom);
        let mut target = new_workload.clone();
        target.placement = placement.clone();
        let scenario = Scenario::new(target, existing.to_vec(), num_servers);
        let qos = predictor.predict_with_scratch(&scenario, scratch);
        evals.push(CandidateEval {
            spread: k,
            placement: placement.clone(),
            predicted_qos: qos,
            sla_ok: qos >= sla_min_qos,
            feasible,
        });
        (placement, qos, feasible)
    };

    let max_k = candidates.len();
    // Full overlap first (k = 1). A probe is accepted only when its SLA
    // holds AND it fits the candidates' CPU headroom — the greedy packer
    // overcommits rather than fail, so the search must reject those
    // configurations and keep widening the spread.
    let (mut best_placement, mut best_qos, feasible) = evaluate(1, &mut evals, &mut scratch);
    let mut chosen = Some(0usize);
    if best_qos < sla_min_qos || !feasible {
        // Binary search the smallest k in [2, max_k] that is feasible and
        // satisfies the SLA (both are monotone in k: more spread means less
        // interference and more aggregate headroom).
        let (mut lo, mut hi) = (2usize, max_k);
        let mut found = None;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let (placement, qos, feasible) = evaluate(mid, &mut evals, &mut scratch);
            if qos >= sla_min_qos && feasible {
                found = Some((placement, qos, evals.len() - 1));
                if mid == 2 {
                    break;
                }
                hi = mid - 1;
            } else {
                lo = mid + 1;
            }
        }
        match found {
            Some((p, q, idx)) => {
                best_placement = p;
                best_qos = q;
                chosen = Some(idx);
            }
            None => return (Err(PlacementError::SlaUnsatisfiable), evals, None),
        }
    }
    let mut spread = best_placement.clone();
    spread.sort_unstable();
    spread.dedup();
    let outcome = BinarySearchOutcome {
        placement: best_placement,
        spread: spread.len(),
        predicted_qos: best_qos,
        predictor_calls: evals.len(),
    };
    (Ok(outcome), evals, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Demand;
    use gsight::{CodingConfig, GsightConfig, QosTarget};
    use metricsd::{FunctionProfile, Metric, MetricVector, ProfileSample, WorkloadProfile};
    use mlcore::ModelKind;
    use simcore::{SimRng, SimTime};
    use workloads::WorkloadClass;

    fn colo(ipc: f64, l3: f64, placement: Vec<usize>) -> ColoWorkload {
        let n = placement.len();
        let mut m = MetricVector::zero();
        m.set(Metric::Ipc, ipc);
        m.set(Metric::L3Mpki, l3);
        let profile = WorkloadProfile::new(
            "w",
            (0..n)
                .map(|i| {
                    FunctionProfile::new(
                        format!("f{i}"),
                        vec![ProfileSample {
                            at: SimTime::ZERO,
                            metrics: m,
                        }],
                        false,
                    )
                })
                .collect(),
        );
        ColoWorkload::new(
            profile,
            WorkloadClass::LatencySensitive,
            vec![Demand::new(1.0, 2.0, l3, 0.0, 0.0, 0.5); n],
            placement,
        )
    }

    /// Ground truth: target IPC shrinks with the number of its functions
    /// sharing a server with the corunner.
    fn truth(target: &ColoWorkload, others: &[ColoWorkload]) -> f64 {
        let base = 2.0;
        let mut overlap = 0usize;
        for o in others {
            for &s in &target.placement {
                if o.placement.contains(&s) {
                    overlap += 1;
                }
            }
        }
        base / (1.0 + 0.4 * overlap as f64)
    }

    fn trained_predictor() -> (GsightPredictor, ColoWorkload) {
        let config = GsightConfig {
            coding: CodingConfig {
                num_servers: 4,
                max_workloads: 3,
            },
            target: QosTarget::Ipc,
            kind: ModelKind::Irfr,
            update_batch: 50,
            seed: 3,
        };
        let corunner = colo(1.0, 6.0, vec![0, 0]);
        let mut rng = SimRng::new(1);
        let mut samples = Vec::new();
        for _ in 0..1500 {
            let placement: Vec<usize> = (0..3).map(|_| rng.index(4)).collect();
            let target = colo(2.0, 4.0, placement);
            let y = truth(&target, std::slice::from_ref(&corunner));
            samples.push((Scenario::new(target, vec![corunner.clone()], 4), y));
        }
        let mut p = GsightPredictor::new(config);
        p.bootstrap(&samples);
        (p, corunner)
    }

    #[test]
    fn loose_sla_packs_fully() {
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        // The most-packed candidate has room for all three functions
        // (3 × 1.0 CPU), so full packing is feasible.
        let out = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[3.0, 2.0, 3.0, 4.0],
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            0.1, // trivially satisfied
        )
        .expect("placement found");
        assert_eq!(out.spread, 1, "loose SLA should fully pack");
        assert_eq!(out.predictor_calls, 1);
    }

    #[test]
    fn infeasible_full_packing_spreads_even_under_loose_sla() {
        // Regression: the most-packed candidate (server 0) has only 1.0 CPU
        // headroom for a 3 × 1.0 CPU workload, so k = 1 would overcommit.
        // The old greedy packer assigned by raw headroom and the search
        // accepted the overcommitted k = 1 under a loose SLA; now the probe
        // is marked infeasible and the search widens the spread.
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        let headroom = [1.0, 2.0, 3.0, 4.0];
        let out = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &headroom,
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            0.1,
        )
        .expect("placement found");
        assert!(out.spread > 1, "k=1 is infeasible, must spread: {out:?}");
        let mut used = [0.0; 4];
        for &s in &out.placement {
            used[s] += 1.0;
        }
        for (s, &u) in used.iter().enumerate() {
            assert!(
                u <= headroom[s] + 1e-9,
                "server {s} overcommitted: {u} > {}",
                headroom[s]
            );
        }
    }

    #[test]
    fn greedy_assign_prefers_fitting_candidate() {
        // Function needs 2.0 CPU; the highest-headroom candidate in the
        // chosen set only has 1.5 left, but a smaller candidate fits it.
        let demands = vec![
            Demand::new(2.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            Demand::new(1.4, 0.0, 0.0, 0.0, 0.0, 0.0),
        ];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        // Server 1 has the most headroom but fits neither function after
        // the big one lands on server 0... construct: f0 (2.0) fits only
        // server 0 (2.0); server 1 (1.5) is skipped despite being... (see
        // asserts).
        let headroom = vec![2.0, 1.5];
        let p = greedy_assign(&demands, &cap, &headroom, &[0, 1], 2);
        // f0 (2.0) cannot fit server 1 (1.5) → goes to server 0 even though
        // 2.0 > 1.5 makes server 0 the max-headroom anyway; then f1 (1.4)
        // fits only server 1 (server 0 is down to 0.0).
        assert_eq!(p, vec![0, 1]);
        // Fallback: nothing fits → least-overcommitted (max headroom).
        let big = vec![Demand::new(5.0, 0.0, 0.0, 0.0, 0.0, 0.0)];
        let p = greedy_assign(&big, &cap, &headroom, &[0, 1], 2);
        assert_eq!(p, vec![0], "falls back to the least-overcommitted server");
    }

    #[test]
    fn tight_sla_spreads() {
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        // Full overlap on server 0 → 3 overlapping functions → IPC ≈ 0.9.
        // Requiring ≥ 1.8 forces the workload away from the corunner.
        let out = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[1.0, 2.0, 3.0, 4.0],
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            1.8,
        )
        .expect("placement found");
        assert!(out.spread > 1, "tight SLA should spread, got {:?}", out);
        assert!(out.predicted_qos >= 1.8);
        // O(log S) probes: 1 (full) + ≤ 2 binary steps.
        assert!(out.predictor_calls <= 4);
    }

    #[test]
    fn impossible_sla_returns_error() {
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        let out = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[1.0, 2.0, 3.0, 4.0],
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            10.0, // unreachable IPC
        );
        assert_eq!(out, Err(PlacementError::SlaUnsatisfiable));
    }

    #[test]
    fn empty_candidate_set_is_an_error_not_a_panic() {
        // Regression: with every server crashed the candidate list is
        // empty; the old code hit `assert!(!candidates.is_empty())`.
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        let out = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[],
            &[1.0, 2.0, 3.0, 4.0],
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            0.1,
        );
        assert_eq!(out, Err(PlacementError::NoCandidates));
        // The audited variant records the (empty) decision instead of
        // panicking, so post-mortem traces still show the refusal.
        let mut audit = AuditLog::new();
        let out = binary_search_placement_audited(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[],
            &[1.0, 2.0, 3.0, 4.0],
            &Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0),
            0.1,
            0.0,
            "w",
            &mut audit,
        );
        assert_eq!(out, Err(PlacementError::NoCandidates));
        assert_eq!(audit.records().len(), 1);
        assert!(audit.records()[0].chosen.is_none());
    }

    #[test]
    fn audited_search_logs_every_probe() {
        let (p, corunner) = trained_predictor();
        let new_wl = colo(2.0, 4.0, vec![0, 0, 0]);
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let mut audit = AuditLog::new();
        // Accepted decision under a tight SLA.
        let out = binary_search_placement_audited(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[1.0, 2.0, 3.0, 4.0],
            &cap,
            1.8,
            1000.0,
            "new-workload",
            &mut audit,
        )
        .expect("placement found");
        // Rejected decision under an impossible SLA.
        let rejected = binary_search_placement_audited(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[1.0, 2.0, 3.0, 4.0],
            &cap,
            10.0,
            2000.0,
            "new-workload",
            &mut audit,
        );
        assert!(rejected.is_err());

        assert_eq!(audit.records().len(), 2);
        assert_eq!(audit.accepted(), 1);
        let first = &audit.records()[0];
        assert_eq!(first.evaluated.len(), out.predictor_calls);
        let chosen = &first.evaluated[first.chosen.expect("accepted")];
        assert_eq!(chosen.placement, out.placement);
        assert!(chosen.sla_ok && chosen.predicted_qos >= 1.8);
        // The audited path must not change the decision.
        let plain = binary_search_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            4,
            &[0, 1, 2, 3],
            &[1.0, 2.0, 3.0, 4.0],
            &cap,
            1.8,
        )
        .unwrap();
        assert_eq!(plain, out);
        let second = &audit.records()[1];
        assert!(second.chosen.is_none());
        assert!(second.evaluated.iter().all(|e| !e.sla_ok));
    }

    #[test]
    fn greedy_assign_biggest_to_most_headroom() {
        let demands = vec![
            Demand::new(2.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            Demand::new(0.5, 0.0, 0.0, 0.0, 0.0, 0.0),
        ];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let headroom = vec![1.0, 4.0];
        let p = greedy_assign(&demands, &cap, &headroom, &[0, 1], 2);
        // Big function (idx 0) → server 1 (most headroom); then server 1
        // drops to 2.0 headroom, still more than server 0's 1.0, so the
        // small function lands there too.
        assert_eq!(p, vec![1, 1]);
    }
}
