//! Hierarchical scheduling — the second scalability extension of paper
//! §6.4 ("policies like ... hierarchy scheduling can be explored").
//!
//! Servers are grouped into racks; the scheduler first orders racks by
//! packed-ness, then runs the §4 binary search *within* one rack at a time,
//! stopping at the first rack that yields an SLA-safe placement. With `R`
//! racks of `S/R` servers each, the happy path costs
//! `O(M · P · log(S/R))` predictor calls instead of `O(M · P · log S)` —
//! and, more importantly in practice, the candidate lists handed to the
//! inner search stay small enough for its greedy configuration to stay
//! meaningful on very large clusters.

use crate::binary_search::{binary_search_placement, BinarySearchOutcome, PlacementError};
use cluster::Demand;
use gsight::{ColoWorkload, GsightPredictor};

/// A named group of servers (a rack, a zone, a pod…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rack {
    /// Member server ids.
    pub servers: Vec<usize>,
}

impl Rack {
    /// Build from member ids.
    pub fn new(servers: Vec<usize>) -> Self {
        assert!(!servers.is_empty(), "empty rack");
        Self { servers }
    }
}

/// Partition `num_servers` into `n_racks` contiguous racks.
pub fn contiguous_racks(num_servers: usize, n_racks: usize) -> Vec<Rack> {
    assert!(n_racks > 0 && n_racks <= num_servers);
    let per = num_servers.div_ceil(n_racks);
    (0..num_servers)
        .collect::<Vec<_>>()
        .chunks(per)
        .map(|c| Rack::new(c.to_vec()))
        .collect()
}

/// Outcome of a hierarchical placement, with the rack that accepted it.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalOutcome {
    /// The inner binary-search outcome.
    pub inner: BinarySearchOutcome,
    /// Index (into the rack list) of the accepting rack.
    pub rack: usize,
    /// Racks probed before success.
    pub racks_probed: usize,
}

/// Place a workload hierarchically: racks ordered most-packed first (least
/// total CPU headroom), inner §4 binary search per rack, first success
/// wins. Returns [`PlacementError::SlaUnsatisfiable`] when no rack can
/// satisfy the SLA and [`PlacementError::NoCandidates`] when the rack list
/// is empty.
#[allow(clippy::too_many_arguments)]
pub fn hierarchical_placement(
    predictor: &GsightPredictor,
    new_workload: &ColoWorkload,
    existing: &[ColoWorkload],
    num_servers: usize,
    racks: &[Rack],
    headroom: &[f64],
    capacity: &Demand,
    sla_min_qos: f64,
) -> Result<HierarchicalOutcome, PlacementError> {
    if racks.is_empty() {
        return Err(PlacementError::NoCandidates);
    }
    // Order racks by total headroom ascending (densest first).
    let mut order: Vec<usize> = (0..racks.len()).collect();
    order.sort_by(|&a, &b| {
        let ha: f64 = racks[a].servers.iter().map(|&s| headroom[s]).sum();
        let hb: f64 = racks[b].servers.iter().map(|&s| headroom[s]).sum();
        ha.partial_cmp(&hb).expect("NaN headroom")
    });
    let mut sla_failed = false;
    for (probed, &rack_idx) in order.iter().enumerate() {
        // Candidates within the rack, most-packed first.
        let mut candidates = racks[rack_idx].servers.clone();
        candidates.sort_by(|&a, &b| headroom[a].partial_cmp(&headroom[b]).expect("NaN headroom"));
        match binary_search_placement(
            predictor,
            new_workload,
            existing,
            num_servers,
            &candidates,
            headroom,
            capacity,
            sla_min_qos,
        ) {
            Ok(inner) => {
                return Ok(HierarchicalOutcome {
                    inner,
                    rack: rack_idx,
                    racks_probed: probed + 1,
                });
            }
            Err(PlacementError::SlaUnsatisfiable) => sla_failed = true,
            Err(PlacementError::NoCandidates) => {}
        }
    }
    Err(if sla_failed {
        PlacementError::SlaUnsatisfiable
    } else {
        PlacementError::NoCandidates
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Demand;
    use gsight::{CodingConfig, GsightConfig, QosTarget, Scenario};
    use metricsd::{FunctionProfile, Metric, MetricVector, ProfileSample, WorkloadProfile};
    use mlcore::ModelKind;
    use simcore::{SimRng, SimTime};
    use workloads::WorkloadClass;

    const S: usize = 8;

    fn colo(ipc: f64, l3: f64, placement: Vec<usize>) -> ColoWorkload {
        let n = placement.len();
        let mut m = MetricVector::zero();
        m.set(Metric::Ipc, ipc);
        m.set(Metric::L3Mpki, l3);
        let profile = WorkloadProfile::new(
            "w",
            (0..n)
                .map(|i| {
                    FunctionProfile::new(
                        format!("f{i}"),
                        vec![ProfileSample {
                            at: SimTime::ZERO,
                            metrics: m,
                        }],
                        false,
                    )
                })
                .collect(),
        );
        ColoWorkload::new(
            profile,
            WorkloadClass::LatencySensitive,
            vec![Demand::new(1.0, 2.0, l3, 0.0, 0.0, 0.5); n],
            placement,
        )
    }

    fn truth(target: &ColoWorkload, others: &[ColoWorkload]) -> f64 {
        let mut overlap = 0usize;
        for o in others {
            for &s in &target.placement {
                if o.placement.contains(&s) {
                    overlap += 1;
                }
            }
        }
        2.0 / (1.0 + 0.4 * overlap as f64)
    }

    fn trained() -> (GsightPredictor, ColoWorkload) {
        let config = GsightConfig {
            coding: CodingConfig {
                num_servers: S,
                max_workloads: 3,
            },
            target: QosTarget::Ipc,
            kind: ModelKind::Irfr,
            update_batch: 50,
            seed: 5,
        };
        let corunner = colo(1.0, 6.0, vec![0, 0]);
        let mut rng = SimRng::new(7);
        let samples: Vec<(Scenario, f64)> = (0..2000)
            .map(|_| {
                let placement: Vec<usize> = (0..2).map(|_| rng.index(S)).collect();
                let t = colo(2.0, 4.0, placement);
                let y = truth(&t, std::slice::from_ref(&corunner));
                (Scenario::new(t, vec![corunner.clone()], S), y)
            })
            .collect();
        let mut p = GsightPredictor::new(config);
        p.bootstrap(&samples);
        (p, corunner)
    }

    #[test]
    fn contiguous_racks_partition() {
        let racks = contiguous_racks(8, 4);
        assert_eq!(racks.len(), 4);
        let all: Vec<usize> = racks.iter().flat_map(|r| r.servers.clone()).collect();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn picks_densest_feasible_rack() {
        let (p, corunner) = trained();
        let racks = contiguous_racks(S, 4); // {0,1} {2,3} {4,5} {6,7}
                                            // Corunner lives on server 0; headroom says rack {0,1} is densest.
        let headroom = vec![1.0, 2.0, 6.0, 6.0, 7.0, 7.0, 8.0, 8.0];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let new_wl = colo(2.0, 4.0, vec![0, 0]);
        // Loose SLA: densest rack ({0,1}) accepted immediately.
        let out = hierarchical_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            S,
            &racks,
            &headroom,
            &cap,
            0.1,
        )
        .expect("placement");
        assert_eq!(out.rack, 0);
        assert_eq!(out.racks_probed, 1);
        assert!(out
            .inner
            .placement
            .iter()
            .all(|s| racks[0].servers.contains(s)));
    }

    #[test]
    fn tight_sla_escalates_to_emptier_rack() {
        let (p, corunner) = trained();
        let racks = contiguous_racks(S, 4);
        let headroom = vec![1.0, 1.0, 6.0, 6.0, 7.0, 7.0, 8.0, 8.0];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let new_wl = colo(2.0, 4.0, vec![0, 0]);
        // SLA requiring near-solo IPC: the corunner's rack cannot host it…
        let out = hierarchical_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            S,
            &racks,
            &headroom,
            &cap,
            1.85,
        )
        .expect("placement");
        // …so the placement escapes rack 0 entirely.
        assert!(out.rack > 0, "should escalate, got rack {}", out.rack);
        assert!(out.inner.predicted_qos >= 1.85);
        assert!(
            !out.inner.placement.contains(&0),
            "must avoid the corunner's server: {:?}",
            out.inner.placement
        );
    }

    #[test]
    fn impossible_sla_exhausts_racks() {
        let (p, corunner) = trained();
        let racks = contiguous_racks(S, 2);
        let headroom = vec![2.0; S];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let new_wl = colo(2.0, 4.0, vec![0, 0]);
        assert_eq!(
            hierarchical_placement(
                &p,
                &new_wl,
                std::slice::from_ref(&corunner),
                S,
                &racks,
                &headroom,
                &cap,
                10.0,
            ),
            Err(PlacementError::SlaUnsatisfiable)
        );
    }

    #[test]
    fn fewer_probes_than_flat_search_scope() {
        let (p, corunner) = trained();
        let racks = contiguous_racks(S, 4);
        let headroom = vec![1.0, 2.0, 6.0, 6.0, 7.0, 7.0, 8.0, 8.0];
        let cap = Demand::new(4.0, 20.0, 8.0, 200.0, 500.0, 16.0);
        let new_wl = colo(2.0, 4.0, vec![0, 0]);
        let out = hierarchical_placement(
            &p,
            &new_wl,
            std::slice::from_ref(&corunner),
            S,
            &racks,
            &headroom,
            &cap,
            0.1,
        )
        .unwrap();
        // Inner search scope is 2 servers: at most 1 + log2(2) probes.
        assert!(out.inner.predictor_calls <= 2);
    }
}
