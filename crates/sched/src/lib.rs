//! `sched` — the Gsight scheduling case study (paper §4, §6.3).
//!
//! The scheduler's goal: *maximize resource efficiency by deploying function
//! instances on a minimum number of active servers while guaranteeing the
//! QoS of colocated workloads*. Exhaustive search over placements is
//! `O(P·S^M)`; the paper's binary-search strategy cuts it to
//! `O(M·P·log S)` by attempting a half spatial overlap whenever the full
//! overlap violates the SLA, checking a single greedy configuration per
//! attempt.
//!
//! * [`binary_search`] — the placement algorithm for a whole M-function
//!   workload.
//! * [`placer`] — [`GsightPlacer`]: the per-instance autoscaling policy
//!   driven by the predictor plus per-workload SLA thresholds (IPC
//!   thresholds derived from the latency–IPC curve, §6.3).
//! * [`overhead`] — wall-clock instrumentation of the scheduling pipeline
//!   for the Fig. 14 overhead study.
//! * [`hierarchical`] — rack-level two-stage search, the hierarchy-
//!   scheduling extension proposed in §6.4's future work.
//! * [`reschedule`] — §4's consolidation pass: migrate instances off
//!   lightly-used servers when every SLA still holds, freeing machines
//!   during load troughs. Under fault injection the same machinery drains
//!   crashed servers ([`plan_drain`]) and validates plans against server
//!   liveness before applying them ([`apply_plan_checked`]).
//!
//! # Degradation under faults
//!
//! Placement calls return [`PlacementError`] instead of panicking when the
//! candidate set is empty (all servers dead/full) or no spread satisfies
//! the SLA. During predictor outages [`GsightPlacer`] switches to a
//! predictor-free degraded policy — reuse the workload's last known good
//! server, else interference-oblivious Best-Fit — and flags those audit
//! records `degraded`.
//!
//! # Predictor-call efficiency
//!
//! Scheduling cost is dominated by predictor invocations (the Fig. 14
//! overhead study), so both search paths are built on the batched pipeline:
//!
//! * [`binary_search`] probes reject placements that would overcommit a
//!   server's CPU headroom before consulting the predictor, and every probe
//!   featurizes into one reused scratch buffer
//!   (`GsightPredictor::predict_with_scratch`) instead of allocating a
//!   fresh `32nS + 2n` vector per call.
//! * [`reschedule`]'s SLA check gathers all scenario evaluations of one
//!   hypothetical move into a single `GsightPredictor::predict_batch` call
//!   and skips SLA entries with no instance on the donor or receiver
//!   server — the move cannot change their colocation, so their satisfied
//!   prediction stands. Plans are unchanged (batch prediction is
//!   bit-identical to sequential) while strictly fewer scenario
//!   evaluations are spent whenever an SLA workload sits away from the
//!   move.

pub mod binary_search;
pub mod hierarchical;
pub mod overhead;
pub mod placer;
pub mod reschedule;

pub use binary_search::{binary_search_placement, BinarySearchOutcome, PlacementError};
pub use hierarchical::{contiguous_racks, hierarchical_placement, HierarchicalOutcome, Rack};
pub use overhead::{DecisionTimer, OverheadBreakdown};
pub use placer::{GsightPlacer, PythiaPlacer, SlaSpec, WorkloadEntry};
pub use reschedule::{
    apply_plan, apply_plan_checked, plan_consolidation, plan_drain, Migration, PlanError,
    ReschedulePlan,
};
