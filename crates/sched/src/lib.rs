//! `sched` — the Gsight scheduling case study (paper §4, §6.3).
//!
//! The scheduler's goal: *maximize resource efficiency by deploying function
//! instances on a minimum number of active servers while guaranteeing the
//! QoS of colocated workloads*. Exhaustive search over placements is
//! `O(P·S^M)`; the paper's binary-search strategy cuts it to
//! `O(M·P·log S)` by attempting a half spatial overlap whenever the full
//! overlap violates the SLA, checking a single greedy configuration per
//! attempt.
//!
//! * [`binary_search`] — the placement algorithm for a whole M-function
//!   workload.
//! * [`placer`] — [`GsightPlacer`]: the per-instance autoscaling policy
//!   driven by the predictor plus per-workload SLA thresholds (IPC
//!   thresholds derived from the latency–IPC curve, §6.3).
//! * [`overhead`] — wall-clock instrumentation of the scheduling pipeline
//!   for the Fig. 14 overhead study.
//! * [`hierarchical`] — rack-level two-stage search, the hierarchy-
//!   scheduling extension proposed in §6.4's future work.
//! * [`reschedule`] — §4's consolidation pass: migrate instances off
//!   lightly-used servers when every SLA still holds, freeing machines
//!   during load troughs.

pub mod binary_search;
pub mod hierarchical;
pub mod overhead;
pub mod placer;
pub mod reschedule;

pub use binary_search::{binary_search_placement, BinarySearchOutcome};
pub use hierarchical::{contiguous_racks, hierarchical_placement, HierarchicalOutcome, Rack};
pub use overhead::{DecisionTimer, OverheadBreakdown};
pub use placer::{GsightPlacer, PythiaPlacer, SlaSpec, WorkloadEntry};
pub use reschedule::{apply_plan, plan_consolidation, Migration, ReschedulePlan};
