//! Wall-clock instrumentation of the online scheduling pipeline
//! (paper §6.4, Fig. 14).
//!
//! The paper decomposes online cost into four steps — *invocation
//! forwarding*, *scheduling decision making*, *instance starting* and
//! *resource allocation* — and reports that decision making takes a few
//! milliseconds (inference ≈ 3.48 ms, incremental update ≈ 24.8 ms per
//! call) while instance starting dominates.

use std::time::{Duration, Instant};

/// Accumulated wall-clock time per pipeline step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverheadBreakdown {
    /// Gateway forwarding (simulated time, ms).
    pub forwarding_ms: f64,
    /// Scheduling decision making (real wall-clock, ms).
    pub decision_ms: f64,
    /// Instance starting / cold start (simulated time, ms).
    pub instance_start_ms: f64,
    /// Resource allocation bookkeeping (real wall-clock, ms).
    pub allocation_ms: f64,
}

impl OverheadBreakdown {
    /// Total across the four steps.
    pub fn total_ms(&self) -> f64 {
        self.forwarding_ms + self.decision_ms + self.instance_start_ms + self.allocation_ms
    }

    /// Fractions per step (same order as the fields); NaNs when total is 0.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_ms();
        [
            self.forwarding_ms / t,
            self.decision_ms / t,
            self.instance_start_ms / t,
            self.allocation_ms / t,
        ]
    }
}

/// Stopwatch for measuring real wall-clock spans of predictor calls.
#[derive(Debug)]
pub struct DecisionTimer {
    spans: Vec<Duration>,
    current: Option<Instant>,
}

impl Default for DecisionTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTimer {
    /// Empty timer.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            current: None,
        }
    }

    /// Start a span. Panics if one is already running.
    pub fn start(&mut self) {
        assert!(self.current.is_none(), "span already running");
        self.current = Some(Instant::now());
    }

    /// Stop the running span, recording it. Panics if none is running.
    pub fn stop(&mut self) {
        let s = self.current.take().expect("no span running");
        self.spans.push(s.elapsed());
    }

    /// Time a closure as one span, returning its result.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }

    /// Number of recorded spans.
    pub fn count(&self) -> usize {
        self.spans.len()
    }

    /// Mean span length in ms (NaN when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.spans.is_empty() {
            return f64::NAN;
        }
        self.spans.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / self.spans.len() as f64
    }

    /// Total recorded time in ms.
    pub fn total_ms(&self) -> f64 {
        self.spans.iter().map(|d| d.as_secs_f64() * 1e3).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fractions() {
        let b = OverheadBreakdown {
            forwarding_ms: 1.0,
            decision_ms: 3.0,
            instance_start_ms: 5.0,
            allocation_ms: 1.0,
        };
        assert_eq!(b.total_ms(), 10.0);
        let f = b.fractions();
        assert!((f[1] - 0.3).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timer_records_spans() {
        let mut t = DecisionTimer::new();
        let x = t.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(x, 42);
        assert_eq!(t.count(), 1);
        assert!(t.mean_ms() >= 1.5, "mean {}", t.mean_ms());
    }

    #[test]
    fn empty_timer_nan_mean() {
        let t = DecisionTimer::new();
        assert!(t.mean_ms().is_nan());
        assert_eq!(t.total_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "span already running")]
    fn double_start_panics() {
        let mut t = DecisionTimer::new();
        t.start();
        t.start();
    }
}
