//! Wall-clock instrumentation of the online scheduling pipeline
//! (paper §6.4, Fig. 14).
//!
//! The paper decomposes online cost into four steps — *invocation
//! forwarding*, *scheduling decision making*, *instance starting* and
//! *resource allocation* — and reports that decision making takes a few
//! milliseconds (inference ≈ 3.48 ms, incremental update ≈ 24.8 ms per
//! call) while instance starting dominates.

use obs::WallProfiler;
use simcore::stats::Summary;
use std::time::{Duration, Instant};

/// Stage names for [`PipelineProfile`], matching the paper's four steps.
pub const STAGE_FORWARD: &str = "invocation forwarding";
/// Scheduling decision making (predictor probes of the binary search).
pub const STAGE_DECIDE: &str = "scheduling decision";
/// Instance starting (cold start).
pub const STAGE_START: &str = "instance starting";
/// Resource allocation bookkeeping.
pub const STAGE_ALLOCATE: &str = "resource allocation";

/// Accumulated wall-clock time per pipeline step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverheadBreakdown {
    /// Gateway forwarding (simulated time, ms).
    pub forwarding_ms: f64,
    /// Scheduling decision making (real wall-clock, ms).
    pub decision_ms: f64,
    /// Instance starting / cold start (simulated time, ms).
    pub instance_start_ms: f64,
    /// Resource allocation bookkeeping (real wall-clock, ms).
    pub allocation_ms: f64,
}

impl OverheadBreakdown {
    /// Total across the four steps.
    pub fn total_ms(&self) -> f64 {
        self.forwarding_ms + self.decision_ms + self.instance_start_ms + self.allocation_ms
    }

    /// Fractions per step (same order as the fields); NaNs when total is 0.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_ms();
        [
            self.forwarding_ms / t,
            self.decision_ms / t,
            self.instance_start_ms / t,
            self.allocation_ms / t,
        ]
    }
}

/// Per-stage sample store for the scheduling pipeline, keeping *every*
/// sample so the Fig. 14 breakdown can report percentiles, not just means.
///
/// [`OverheadBreakdown`] summarises one number per stage; this wraps an
/// [`obs::WallProfiler`] with the four canonical stage names and converts
/// between the two.
#[derive(Debug, Clone, Default)]
pub struct PipelineProfile {
    profiler: WallProfiler,
}

impl PipelineProfile {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a forwarding sample (ms).
    pub fn forward_ms(&mut self, ms: f64) {
        self.profiler.record_ms(STAGE_FORWARD, ms);
    }

    /// Record a decision-making sample (ms).
    pub fn decide_ms(&mut self, ms: f64) {
        self.profiler.record_ms(STAGE_DECIDE, ms);
    }

    /// Time a decision-making closure (wall clock).
    pub fn time_decide<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.profiler.time(STAGE_DECIDE, f)
    }

    /// Record an instance-starting sample (ms).
    pub fn start_ms(&mut self, ms: f64) {
        self.profiler.record_ms(STAGE_START, ms);
    }

    /// Record a resource-allocation sample (ms).
    pub fn allocate_ms(&mut self, ms: f64) {
        self.profiler.record_ms(STAGE_ALLOCATE, ms);
    }

    /// Percentile summary of one stage (see the `STAGE_*` constants).
    pub fn summary(&self, stage: &str) -> Option<Summary> {
        self.profiler.summary(stage)
    }

    /// Mean-per-stage breakdown in the classic Fig. 14 shape.
    pub fn breakdown(&self) -> OverheadBreakdown {
        OverheadBreakdown {
            forwarding_ms: self.profiler.mean_ms(STAGE_FORWARD),
            decision_ms: self.profiler.mean_ms(STAGE_DECIDE),
            instance_start_ms: self.profiler.mean_ms(STAGE_START),
            allocation_ms: self.profiler.mean_ms(STAGE_ALLOCATE),
        }
    }

    /// Text table of per-stage percentiles.
    pub fn render_table(&self) -> String {
        self.profiler.render_table()
    }

    /// The underlying profiler (for JSONL export).
    pub fn profiler(&self) -> &WallProfiler {
        &self.profiler
    }
}

/// Stopwatch for measuring real wall-clock spans of predictor calls.
#[derive(Debug)]
pub struct DecisionTimer {
    spans: Vec<Duration>,
    current: Option<Instant>,
}

impl Default for DecisionTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTimer {
    /// Empty timer.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            current: None,
        }
    }

    /// Start a span. Panics if one is already running.
    pub fn start(&mut self) {
        assert!(self.current.is_none(), "span already running");
        self.current = Some(Instant::now());
    }

    /// Stop the running span, recording it. Panics if none is running.
    pub fn stop(&mut self) {
        let s = self.current.take().expect("no span running");
        self.spans.push(s.elapsed());
    }

    /// Time a closure as one span, returning its result.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }

    /// Number of recorded spans.
    pub fn count(&self) -> usize {
        self.spans.len()
    }

    /// Mean span length in ms (NaN when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.spans.is_empty() {
            return f64::NAN;
        }
        self.spans
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .sum::<f64>()
            / self.spans.len() as f64
    }

    /// Total recorded time in ms.
    pub fn total_ms(&self) -> f64 {
        self.spans.iter().map(|d| d.as_secs_f64() * 1e3).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fractions() {
        let b = OverheadBreakdown {
            forwarding_ms: 1.0,
            decision_ms: 3.0,
            instance_start_ms: 5.0,
            allocation_ms: 1.0,
        };
        assert_eq!(b.total_ms(), 10.0);
        let f = b.fractions();
        assert!((f[1] - 0.3).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timer_records_spans() {
        let mut t = DecisionTimer::new();
        let x = t.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(x, 42);
        assert_eq!(t.count(), 1);
        assert!(t.mean_ms() >= 1.5, "mean {}", t.mean_ms());
    }

    #[test]
    fn empty_timer_nan_mean() {
        let t = DecisionTimer::new();
        assert!(t.mean_ms().is_nan());
        assert_eq!(t.total_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "span already running")]
    fn double_start_panics() {
        let mut t = DecisionTimer::new();
        t.start();
        t.start();
    }

    #[test]
    fn pipeline_profile_breakdown_and_percentiles() {
        let mut p = PipelineProfile::new();
        for i in 1..=10 {
            p.forward_ms(i as f64);
            p.decide_ms(2.0 * i as f64);
        }
        p.start_ms(400.0);
        p.allocate_ms(0.05);
        let b = p.breakdown();
        assert!((b.forwarding_ms - 5.5).abs() < 1e-12);
        assert!((b.decision_ms - 11.0).abs() < 1e-12);
        assert_eq!(b.instance_start_ms, 400.0);
        let s = p.summary(STAGE_DECIDE).unwrap();
        assert_eq!(s.count, 10);
        assert!(s.p50 <= s.p95 && s.p95 <= s.max);
        assert!(p.summary("nonexistent stage").is_none());
        let table = p.render_table();
        assert!(table.contains(STAGE_FORWARD) && table.contains(STAGE_START));
    }

    #[test]
    fn time_decide_measures_wall_clock() {
        let mut p = PipelineProfile::new();
        let out = p.time_decide(|| {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let s = p.summary(STAGE_DECIDE).unwrap();
        assert_eq!(s.count, 1);
        assert!(s.mean >= 1.5);
    }
}
