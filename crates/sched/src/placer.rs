//! The Gsight autoscaling placer (the paper's scheduling case study, §6.3).
//!
//! When the platform scales a function out, [`GsightPlacer`] chooses the
//! target server by querying the predictor on hypothetical scenarios:
//! candidate servers are ordered most-packed first (density objective) and
//! binary-searched for the most-packed server at which every SLA-bearing
//! workload's predicted IPC still clears its threshold — the per-instance
//! analogue of §4's whole-workload search.

use cluster::Demand;
use gsight::{ColoWorkload, GsightPredictor, Scenario};
use obs::{AuditLog, CandidateEval, DecisionRecord, WallProfiler};
use platform::scale::{ClusterView, PlacementDecision, Placer};
use workloads::{FunctionSpec, Workload, WorkloadClass};

/// Per-workload SLA: minimum predicted mean IPC, derived from the
/// latency–IPC curve (paper §6.3: "we adopt the IPC model for scheduling by
/// transforming the tail latency in SLA into IPC").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaSpec {
    /// Minimum acceptable predicted IPC. `None` for BG workloads.
    pub min_ipc: Option<f64>,
}

/// A workload registered with the placer: its profiles, class, per-node
/// demands, SLA, and the instances placed so far.
pub struct WorkloadEntry {
    /// Workload name (matched against the `Workload` the platform passes).
    pub name: String,
    /// Class.
    pub class: WorkloadClass,
    /// Solo profiles per call-graph node.
    pub profile: metricsd::WorkloadProfile,
    /// Mean demand per call-graph node.
    pub demands: Vec<Demand>,
    /// SLA.
    pub sla: SlaSpec,
    /// Placed instances: `(node, server)`.
    pub instances: Vec<(usize, usize)>,
}

impl WorkloadEntry {
    /// Build the scenario-view of this workload from its current instances
    /// (each instance appears as one function entry — the spatial coding
    /// aggregates same-server entries into virtual functions).
    fn as_colo(&self) -> Option<ColoWorkload> {
        if self.instances.is_empty() {
            return None;
        }
        let functions: Vec<metricsd::FunctionProfile> = self
            .instances
            .iter()
            .map(|&(node, _)| self.profile.functions[node].clone())
            .collect();
        let demands: Vec<Demand> = self
            .instances
            .iter()
            .map(|&(node, _)| self.demands[node])
            .collect();
        let placement: Vec<usize> = self.instances.iter().map(|&(_, s)| s).collect();
        Some(ColoWorkload::new(
            metricsd::WorkloadProfile::new(self.name.clone(), functions),
            self.class,
            demands,
            placement,
        ))
    }
}

/// The Gsight placement policy.
pub struct GsightPlacer {
    predictor: GsightPredictor,
    entries: Vec<WorkloadEntry>,
    /// Predictor invocations made (for the Fig. 14 overhead study).
    pub predictor_calls: usize,
    audit: Option<AuditLog>,
    now_ms: f64,
    /// Cleared during predictor-outage windows (fault injection): placement
    /// falls back to the interference-oblivious degraded policy.
    predictor_available: bool,
    /// Decisions made without the predictor (degraded mode).
    pub degraded_decisions: usize,
    /// Wall-clock profile of individual candidate probes (stage
    /// [`Self::PROBE_STAGE`]), when enabled.
    probe_profiler: Option<WallProfiler>,
}

impl GsightPlacer {
    /// New placer around a trained IPC predictor.
    pub fn new(predictor: GsightPredictor) -> Self {
        Self {
            predictor,
            entries: Vec::new(),
            predictor_calls: 0,
            audit: None,
            now_ms: 0.0,
            predictor_available: true,
            degraded_decisions: 0,
            probe_profiler: None,
        }
    }

    /// Stage name under which probe latencies are recorded.
    pub const PROBE_STAGE: &'static str = "sched.probe";

    /// Start timing every candidate probe (one wall-clock sample per
    /// [`Self::probe`] call) under the [`Self::PROBE_STAGE`] stage.
    pub fn enable_probe_profiling(&mut self) {
        self.probe_profiler.get_or_insert_with(WallProfiler::new);
    }

    /// The probe-latency profile collected so far (when
    /// [`Self::enable_probe_profiling`] was called).
    pub fn probe_profiler(&self) -> Option<&WallProfiler> {
        self.probe_profiler.as_ref()
    }

    /// Start recording one [`DecisionRecord`] per [`Placer::place`] call.
    pub fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(AuditLog::new);
    }

    /// The audit log collected so far (when [`Self::enable_audit`] was
    /// called).
    pub fn audit(&self) -> Option<&AuditLog> {
        self.audit.as_ref()
    }

    /// Register a workload before deployment. Instances placed through
    /// [`Placer::place`] (or recorded with [`GsightPlacer::record`]) extend
    /// the entry.
    pub fn register(&mut self, entry: WorkloadEntry) {
        assert!(
            self.entries.iter().all(|e| e.name != entry.name),
            "workload {} already registered",
            entry.name
        );
        self.entries.push(entry);
    }

    /// Record an externally decided placement (e.g. the initial deployment).
    pub fn record(&mut self, workload: &str, node: usize, server: usize) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.name == workload)
            .expect("workload not registered");
        e.instances.push((node, server));
    }

    /// Access the registered entries (for inspection in experiments).
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Predicted IPC of workload `target_idx` under the current placements,
    /// with `extra` optionally describing a hypothetical additional instance
    /// `(workload_idx, node, server)`.
    fn predict_ipc(
        &mut self,
        target_idx: usize,
        extra: Option<(usize, usize, usize)>,
        num_servers: usize,
    ) -> Option<f64> {
        let build = |e: &WorkloadEntry, extra: Option<(usize, usize)>| -> Option<ColoWorkload> {
            match extra {
                None => e.as_colo(),
                Some((node, server)) => {
                    let mut tmp = WorkloadEntry {
                        name: e.name.clone(),
                        class: e.class,
                        profile: e.profile.clone(),
                        demands: e.demands.clone(),
                        sla: e.sla,
                        instances: e.instances.clone(),
                    };
                    tmp.instances.push((node, server));
                    tmp.as_colo()
                }
            }
        };
        let target = build(
            &self.entries[target_idx],
            extra.and_then(|(w, n, s)| (w == target_idx).then_some((n, s))),
        )?;
        let others: Vec<ColoWorkload> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != target_idx)
            .filter_map(|(i, e)| build(e, extra.and_then(|(w, n, s)| (w == i).then_some((n, s)))))
            .collect();
        self.predictor_calls += 1;
        Some(
            self.predictor
                .predict(&Scenario::new(target, others, num_servers)),
        )
    }

    /// Whether placing `(workload_idx, node)` on `server` keeps every
    /// SLA-bearing workload's predicted IPC above its threshold, plus the
    /// lowest predicted IPC seen (the binding constraint; NaN when no SLA
    /// workload could be evaluated).
    fn sla_eval(
        &mut self,
        wl_idx: usize,
        node: usize,
        server: usize,
        num_servers: usize,
    ) -> (bool, f64) {
        let mut worst = f64::NAN;
        for i in 0..self.entries.len() {
            let Some(min_ipc) = self.entries[i].sla.min_ipc else {
                continue;
            };
            // `None` means an unplaced workload: nothing to violate yet.
            if let Some(ipc) = self.predict_ipc(i, Some((wl_idx, node, server)), num_servers) {
                if worst.is_nan() || ipc < worst {
                    worst = ipc;
                }
                if ipc < min_ipc {
                    return (false, worst);
                }
            }
        }
        (true, worst)
    }

    /// One audited probe: evaluate a candidate (ranked `rank` in the
    /// most-packed-first order) and, when auditing, append the evaluation.
    fn probe(
        &mut self,
        wl_idx: usize,
        node: usize,
        rank: usize,
        server: usize,
        num_servers: usize,
        evals: &mut Vec<CandidateEval>,
    ) -> bool {
        let started = self.probe_profiler.is_some().then(std::time::Instant::now);
        let (ok, qos) = self.sla_eval(wl_idx, node, server, num_servers);
        if let (Some(t0), Some(prof)) = (started, self.probe_profiler.as_mut()) {
            prof.record_ms(Self::PROBE_STAGE, t0.elapsed().as_secs_f64() * 1e3);
        }
        if self.audit.is_some() {
            evals.push(CandidateEval {
                // Per-instance analogue of §4's spread: how far down the
                // most-packed-first candidate order the probe sits.
                spread: rank + 1,
                placement: vec![server],
                predicted_qos: qos,
                sla_ok: ok,
                // Candidates were pre-filtered by `view.fits`.
                feasible: true,
            });
        }
        ok
    }

    /// Predictor-unavailable fallback: no predictor calls are made. The
    /// instance lands on the workload's *last known good* server — the most
    /// recently used placement that is still alive and fits — so degraded
    /// scale-outs reinforce placements the predictor previously vetted.
    /// With no reusable server the fallback is interference-oblivious
    /// Best-Fit (smallest feasible headroom, preserving the density
    /// objective). Audited decisions are flagged `degraded`.
    fn place_degraded(
        &mut self,
        view: &ClusterView<'_>,
        wl_idx: usize,
        workload: &Workload,
        demand: &Demand,
    ) -> Option<usize> {
        let last_good = self.entries[wl_idx]
            .instances
            .iter()
            .rev()
            .map(|&(_, s)| s)
            .find(|&s| view.fits(s, demand));
        let chosen = last_good.or_else(|| {
            (0..view.num_servers())
                .filter(|&s| view.fits(s, demand))
                .min_by(|&a, &b| {
                    view.cpu_headroom(a)
                        .partial_cmp(&view.cpu_headroom(b))
                        .expect("NaN headroom")
                })
        });
        self.degraded_decisions += 1;
        if let Some(audit) = self.audit.as_mut() {
            let evaluated: Vec<CandidateEval> = chosen
                .map(|s| CandidateEval {
                    spread: 1,
                    placement: vec![s],
                    // Not a predictor output: degraded decisions are
                    // accepted without a QoS estimate.
                    predicted_qos: f64::NAN,
                    sla_ok: true,
                    feasible: true,
                })
                .into_iter()
                .collect();
            audit.push(DecisionRecord {
                at_ms: self.now_ms,
                workload: workload.name.clone(),
                sla_min_qos: self.entries[wl_idx]
                    .sla
                    .min_ipc
                    .unwrap_or(f64::NEG_INFINITY),
                chosen: chosen.map(|_| 0),
                evaluated,
                predictor_calls: 0,
                degraded: true,
            });
        }
        chosen
    }
}

impl Placer for GsightPlacer {
    fn place(
        &mut self,
        view: &ClusterView<'_>,
        workload: &Workload,
        node: usize,
        spec: &FunctionSpec,
    ) -> Option<PlacementDecision> {
        let wl_idx = self.entries.iter().position(|e| e.name == workload.name)?;
        let demand = spec.mean_demand();
        if !self.predictor_available {
            let server = self.place_degraded(view, wl_idx, workload, &demand)?;
            self.entries[wl_idx].instances.push((node, server));
            return Some(PlacementDecision {
                server,
                socket: view.server(server).least_loaded_socket(None),
            });
        }
        let calls_before = self.predictor_calls;
        let mut evals: Vec<CandidateEval> = Vec::new();
        let mut chosen_eval: Option<usize> = None;
        // Candidates: feasible servers, most packed first.
        let mut candidates: Vec<usize> = (0..view.num_servers())
            .filter(|&s| view.fits(s, &demand))
            .collect();
        let chosen = if candidates.is_empty() {
            None
        } else {
            candidates.sort_by(|&a, &b| {
                view.cpu_headroom(a)
                    .partial_cmp(&view.cpu_headroom(b))
                    .expect("NaN headroom")
            });
            let num_servers = view.num_servers();

            // Binary search the most-packed SLA-safe candidate (assumes
            // safety is monotone in spread, as §4 does).
            if self.probe(wl_idx, node, 0, candidates[0], num_servers, &mut evals) {
                chosen_eval = Some(evals.len().saturating_sub(1));
                Some(candidates[0])
            } else {
                let (mut lo, mut hi) = (1usize, candidates.len().saturating_sub(1));
                let mut found = None;
                while lo <= hi {
                    let mid = (lo + hi) / 2;
                    if self.probe(wl_idx, node, mid, candidates[mid], num_servers, &mut evals) {
                        found = Some(candidates[mid]);
                        chosen_eval = Some(evals.len().saturating_sub(1));
                        if mid == 1 {
                            break;
                        }
                        hi = mid - 1;
                    } else {
                        lo = mid + 1;
                    }
                }
                found
            }
        };
        if let Some(audit) = self.audit.as_mut() {
            audit.push(DecisionRecord {
                at_ms: self.now_ms,
                workload: workload.name.clone(),
                sla_min_qos: self.entries[wl_idx]
                    .sla
                    .min_ipc
                    .unwrap_or(f64::NEG_INFINITY),
                evaluated: evals,
                chosen: chosen_eval,
                predictor_calls: self.predictor_calls - calls_before,
                degraded: false,
            });
        }
        let server = chosen?;
        self.entries[wl_idx].instances.push((node, server));
        Some(PlacementDecision {
            server,
            socket: view.server(server).least_loaded_socket(None),
        })
    }

    fn note_time(&mut self, now_ms: f64) {
        self.now_ms = now_ms;
    }

    fn set_predictor_available(&mut self, available: bool) {
        self.predictor_available = available;
    }

    fn note_server_down(&mut self, server: usize) {
        // Instances on a crashed server are gone: drop them from the
        // bookkeeping so hypothetical scenarios (and last-known-good
        // lookups) no longer see them.
        for e in &mut self.entries {
            e.instances.retain(|&(_, s)| s != server);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The Pythia comparison placer: Best-Fit packing gated by the
/// placement-blind Pythia predictor.
///
/// Because Pythia's features carry no placement information, its SLA check
/// returns the same verdict for every candidate server; when the (global)
/// prediction violates a threshold the placer must refuse the scale-out
/// outright — the structural conservatism that costs it density in the
/// paper's Fig. 11.
pub struct PythiaPlacer {
    predictor: baselines::PythiaLike,
    entries: Vec<WorkloadEntry>,
}

impl PythiaPlacer {
    /// New placer around a trained Pythia predictor.
    pub fn new(predictor: baselines::PythiaLike) -> Self {
        Self {
            predictor,
            entries: Vec::new(),
        }
    }

    /// Register a workload (same bookkeeping as [`GsightPlacer`]).
    pub fn register(&mut self, entry: WorkloadEntry) {
        assert!(
            self.entries.iter().all(|e| e.name != entry.name),
            "workload {} already registered",
            entry.name
        );
        self.entries.push(entry);
    }

    /// Blind SLA check: predicted IPC of every SLA workload given the whole
    /// colocation (placement-independent by construction).
    fn sla_safe(&self, wl_idx: usize, node: usize, num_servers: usize) -> bool {
        use baselines::ScenarioPredictor;
        for (i, e) in self.entries.iter().enumerate() {
            let Some(min_ipc) = e.sla.min_ipc else {
                continue;
            };
            let Some(target) = e.as_colo() else { continue };
            let others: Vec<gsight::ColoWorkload> = self
                .entries
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .filter_map(|(j, o)| {
                    if j == wl_idx {
                        // Include the hypothetical new instance.
                        let mut tmp = WorkloadEntry {
                            name: o.name.clone(),
                            class: o.class,
                            profile: o.profile.clone(),
                            demands: o.demands.clone(),
                            sla: o.sla,
                            instances: o.instances.clone(),
                        };
                        tmp.instances.push((node, 0));
                        tmp.as_colo()
                    } else {
                        o.as_colo()
                    }
                })
                .collect();
            let scenario = gsight::Scenario::new(target, others, num_servers);
            if self.predictor.predict(&scenario) < min_ipc {
                return false;
            }
        }
        true
    }
}

impl Placer for PythiaPlacer {
    fn place(
        &mut self,
        view: &ClusterView<'_>,
        workload: &Workload,
        node: usize,
        spec: &FunctionSpec,
    ) -> Option<PlacementDecision> {
        let wl_idx = self.entries.iter().position(|e| e.name == workload.name)?;
        if !self.sla_safe(wl_idx, node, view.num_servers()) {
            return None; // blind refusal: no server can look better
        }
        let demand = spec.mean_demand();
        // Best Fit: the feasible server with the smallest headroom.
        let server = (0..view.num_servers())
            .filter(|&s| view.fits(s, &demand))
            .min_by(|&a, &b| {
                view.cpu_headroom(a)
                    .partial_cmp(&view.cpu_headroom(b))
                    .expect("NaN headroom")
            })?;
        self.entries[wl_idx].instances.push((node, server));
        Some(PlacementDecision {
            server,
            socket: view.server(server).least_loaded_socket(None),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ServerSpec, ServerState};
    use gsight::{CodingConfig, GsightConfig, QosTarget};
    use metricsd::{FunctionProfile, Metric, MetricVector, ProfileSample, WorkloadProfile};
    use mlcore::ModelKind;
    use simcore::{SimRng, SimTime};

    fn profile(n: usize, ipc: f64) -> WorkloadProfile {
        let mut m = MetricVector::zero();
        m.set(Metric::Ipc, ipc);
        m.set(Metric::L3Mpki, 4.0);
        WorkloadProfile::new(
            "w",
            (0..n)
                .map(|i| {
                    FunctionProfile::new(
                        format!("f{i}"),
                        vec![ProfileSample {
                            at: SimTime::ZERO,
                            metrics: m,
                        }],
                        false,
                    )
                })
                .collect(),
        )
    }

    /// Train a predictor on the simple overlap-count ground truth.
    fn predictor() -> GsightPredictor {
        let config = GsightConfig {
            coding: CodingConfig {
                num_servers: 4,
                max_workloads: 3,
            },
            target: QosTarget::Ipc,
            kind: ModelKind::Irfr,
            update_batch: 50,
            seed: 11,
        };
        let mut rng = SimRng::new(2);
        let mut samples = Vec::new();
        for _ in 0..1500 {
            let tp: Vec<usize> = (0..2).map(|_| rng.index(4)).collect();
            let op: Vec<usize> = (0..2).map(|_| rng.index(4)).collect();
            let overlap = tp.iter().filter(|s| op.contains(s)).count();
            let y = 2.0 / (1.0 + 0.5 * overlap as f64);
            let target = ColoWorkload::new(
                profile(2, 2.0),
                WorkloadClass::LatencySensitive,
                vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
                tp,
            );
            let other = ColoWorkload::new(
                profile(2, 1.0),
                WorkloadClass::LatencySensitive,
                vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
                op,
            );
            samples.push((Scenario::new(target, vec![other], 4), y));
        }
        let mut p = GsightPredictor::new(config);
        p.bootstrap(&samples);
        p
    }

    fn entry(name: &str, sla: Option<f64>) -> WorkloadEntry {
        WorkloadEntry {
            name: name.into(),
            class: WorkloadClass::LatencySensitive,
            profile: profile(2, if sla.is_some() { 2.0 } else { 1.0 }),
            demands: vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
            sla: SlaSpec { min_ipc: sla },
            instances: Vec::new(),
        }
    }

    fn servers(n: usize) -> Vec<ServerState> {
        (0..n)
            .map(|_| ServerState::new(ServerSpec::small()))
            .collect()
    }

    #[test]
    fn packs_when_sla_loose() {
        let mut placer = GsightPlacer::new(predictor());
        placer.register(entry("victim", Some(0.1)));
        placer.register(entry("agg", None));
        placer.record("victim", 0, 0);
        placer.record("victim", 1, 0);
        let servers = servers(4);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let mut agg_wl = w.clone();
        agg_wl.name = "agg".into();
        let spec = w.graph.func(w.graph.roots()[0]).clone();
        let d = placer.place(&view, &agg_wl, 0, &spec).unwrap();
        // All servers are empty per the view; candidates sorted by headroom
        // keep server order, so packing lands on server 0 (tied headroom,
        // stable order) and the loose SLA accepts it.
        assert_eq!(d.server, 0);
        assert_eq!(placer.entries()[1].instances, vec![(0, 0)]);
    }

    #[test]
    fn avoids_victim_when_sla_tight() {
        let mut placer = GsightPlacer::new(predictor());
        placer.register(entry("victim", Some(1.8)));
        placer.register(entry("agg", None));
        placer.record("victim", 0, 0);
        placer.record("victim", 1, 0);
        let servers = servers(4);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let mut agg_wl = w.clone();
        agg_wl.name = "agg".into();
        let spec = w.graph.func(w.graph.roots()[0]).clone();
        let d = placer.place(&view, &agg_wl, 0, &spec).unwrap();
        assert_ne!(d.server, 0, "tight SLA must steer the aggressor away");
    }

    #[test]
    fn unregistered_workload_refused() {
        let mut placer = GsightPlacer::new(predictor());
        let servers = servers(2);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let spec = w.graph.func(w.graph.roots()[0]).clone();
        assert!(placer.place(&view, &w, 0, &spec).is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_rejected() {
        let mut placer = GsightPlacer::new(predictor());
        placer.register(entry("a", None));
        placer.register(entry("a", None));
    }

    #[test]
    fn degraded_mode_reuses_last_good_server_without_predictor() {
        let mut placer = GsightPlacer::new(predictor());
        placer.enable_audit();
        placer.register(entry("victim", Some(1.8)));
        placer.record("victim", 0, 2);
        let servers = servers(4);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let mut wl = w.clone();
        wl.name = "victim".into();
        let spec = w.graph.func(w.graph.roots()[0]).clone();

        placer.set_predictor_available(false);
        let d = placer.place(&view, &wl, 1, &spec).unwrap();
        assert_eq!(d.server, 2, "degraded mode reuses the last good server");
        assert_eq!(placer.predictor_calls, 0, "no predictor during an outage");
        assert_eq!(placer.degraded_decisions, 1);
        let rec = &placer.audit().unwrap().records()[0];
        assert!(rec.degraded);
        assert_eq!(rec.predictor_calls, 0);

        // Recovery restores the predictor-driven path. Whether a feasible
        // server exists depends on model numerics (the victim is now
        // self-colocated, out of the predictor's training distribution) —
        // what matters here is that the predictor is consulted again and
        // the decision is no longer flagged degraded.
        placer.set_predictor_available(true);
        placer.place(&view, &wl, 1, &spec);
        assert!(placer.predictor_calls > 0);
        assert!(!placer.audit().unwrap().records()[1].degraded);
    }

    #[test]
    fn probe_profiling_records_one_sample_per_probe() {
        let mut placer = GsightPlacer::new(predictor());
        placer.enable_probe_profiling();
        placer.register(entry("victim", Some(1.8)));
        placer.register(entry("agg", None));
        placer.record("victim", 0, 0);
        placer.record("victim", 1, 0);
        let servers = servers(4);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let mut agg_wl = w.clone();
        agg_wl.name = "agg".into();
        let spec = w.graph.func(w.graph.roots()[0]).clone();
        placer.place(&view, &agg_wl, 0, &spec).unwrap();
        let prof = placer.probe_profiler().expect("profiling enabled");
        let n = prof.count(GsightPlacer::PROBE_STAGE);
        assert!(n >= 2, "binary search must issue at least two probes");
        let s = prof.summary(GsightPlacer::PROBE_STAGE).unwrap();
        assert_eq!(s.count, n);
        assert!(s.p99.is_finite() && s.p99 >= 0.0);
        // Off by default: a fresh placer records nothing.
        let fresh = GsightPlacer::new(predictor());
        assert!(fresh.probe_profiler().is_none());
    }

    #[test]
    fn note_server_down_forgets_lost_instances() {
        let mut placer = GsightPlacer::new(predictor());
        placer.register(entry("victim", Some(0.1)));
        placer.record("victim", 0, 1);
        placer.record("victim", 1, 2);
        placer.note_server_down(2);
        assert_eq!(placer.entries()[0].instances, vec![(0, 1)]);
        // Degraded placement now falls back past the dead server's entry.
        placer.set_predictor_available(false);
        let servers = servers(4);
        let view = ClusterView::new(&servers);
        let w = workloads::functionbench::float_operation();
        let mut wl = w.clone();
        wl.name = "victim".into();
        let spec = w.graph.func(w.graph.roots()[0]).clone();
        let d = placer.place(&view, &wl, 1, &spec).unwrap();
        assert_eq!(d.server, 1, "last good server is the surviving one");
    }
}
