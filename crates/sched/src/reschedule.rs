//! Consolidation rescheduling (paper §4).
//!
//! *"When the invocation load varies but does not yet cause scaling-out
//! operations, it is also possible to further optimize resource efficiency
//! by rescheduling the existing instances."*
//!
//! The pass proposes migrations that empty lightly-used servers: instances
//! on the least-loaded *donor* servers are moved onto more-loaded
//! *receiver* servers whenever the predictor says every SLA still holds
//! after the move. Emptied servers can then be powered down — the
//! density/utilization win of Fig. 11 extended to load troughs.
//!
//! # Predictor-call reduction
//!
//! Checking one hypothetical move used to issue one predictor call per
//! SLA-bearing workload. Two optimizations cut that cost:
//!
//! 1. **Batching** — all per-entry scenarios of one move are gathered into
//!    a single [`GsightPredictor::predict_batch`] call, which featurizes
//!    rows in parallel and runs the forest tree-major over the whole batch
//!    (bit-identical to per-row `predict`).
//! 2. **Skipping** — under the spatial-overlap interference model, a move
//!    only changes colocation on the donor and receiver servers; an SLA
//!    entry with no instance on either server keeps its overlap pattern,
//!    so its (already satisfied) prediction is not re-evaluated.
//!
//! [`ReschedulePlan::predictor_calls`] counts *scenario evaluations* (batch
//! rows), so counts stay comparable with the pre-batching implementation —
//! the skip makes them strictly smaller whenever an SLA entry sits away
//! from the move.

use crate::placer::WorkloadEntry;
use cluster::Demand;
use gsight::{ColoWorkload, GsightPredictor, Scenario};

/// One proposed migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Index of the workload in the entry list handed to
    /// [`plan_consolidation`]. Rollback and [`apply_plan`] resolve the
    /// entry by this index — names may repeat across entries.
    pub entry: usize,
    /// Workload name (display only; not used for resolution).
    pub workload: String,
    /// Index into the workload's instance list.
    pub instance: usize,
    /// Current server.
    pub from: usize,
    /// Proposed server.
    pub to: usize,
}

/// Outcome of a consolidation pass.
#[derive(Debug, Clone, Default)]
pub struct ReschedulePlan {
    /// Migrations, in application order.
    pub migrations: Vec<Migration>,
    /// Servers left empty if the plan is applied.
    pub freed_servers: Vec<usize>,
    /// Predictor scenario evaluations spent building the plan (rows fed to
    /// [`GsightPredictor::predict_batch`], equivalent to single-scenario
    /// `predict` calls).
    pub predictor_calls: usize,
}

/// Scenario view of an entry list, with instance `(wl, idx)` optionally
/// re-homed to `server`.
fn colo_views(
    entries: &[WorkloadEntry],
    moved: Option<(usize, usize, usize)>,
) -> Vec<Option<ColoWorkload>> {
    entries
        .iter()
        .enumerate()
        .map(|(w, e)| {
            if e.instances.is_empty() {
                return None;
            }
            let functions: Vec<metricsd::FunctionProfile> = e
                .instances
                .iter()
                .map(|&(node, _)| e.profile.functions[node].clone())
                .collect();
            let demands: Vec<Demand> = e
                .instances
                .iter()
                .map(|&(node, _)| e.demands[node])
                .collect();
            let placement: Vec<usize> = e
                .instances
                .iter()
                .enumerate()
                .map(|(i, &(_, server))| match moved {
                    Some((mw, mi, to)) if mw == w && mi == i => to,
                    _ => server,
                })
                .collect();
            Some(ColoWorkload::new(
                metricsd::WorkloadProfile::new(e.name.clone(), functions),
                e.class,
                demands,
                placement,
            ))
        })
        .collect()
}

/// Check every SLA under a hypothetical placement, batching all scenario
/// evaluations of the move into one `predict_batch` call.
///
/// When `moved` is set, SLA entries with no instance on the donor or
/// receiver server are skipped: the move does not change colocation on any
/// server they occupy, so their previously satisfied prediction stands.
///
/// `row_scratch` is the reusable row-major featurization buffer passed to
/// [`GsightPredictor::predict_batch_with_scratch`]; planners allocate it
/// once and reuse it across every probed move.
fn slas_hold(
    predictor: &GsightPredictor,
    entries: &[WorkloadEntry],
    moved: Option<(usize, usize, usize)>,
    num_servers: usize,
    calls: &mut usize,
    row_scratch: &mut Vec<f64>,
) -> bool {
    let views = colo_views(entries, moved);
    // Servers whose colocation the move changes: the instance's current
    // home (`entries` is not yet mutated) and its proposed one.
    let touched: Option<(usize, usize)> = moved.map(|(w, i, to)| (entries[w].instances[i].1, to));
    let mut thresholds: Vec<f64> = Vec::new();
    let mut scenarios: Vec<Scenario> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let Some(min_ipc) = e.sla.min_ipc else {
            continue;
        };
        let Some(target) = views[i].clone() else {
            continue;
        };
        if let Some((from, to)) = touched {
            if !e.instances.iter().any(|&(_, s)| s == from || s == to) {
                continue;
            }
        }
        let others: Vec<ColoWorkload> = views
            .iter()
            .enumerate()
            .filter(|(j, v)| *j != i && v.is_some())
            .map(|(_, v)| v.clone().expect("filtered Some"))
            .collect();
        scenarios.push(Scenario::new(target, others, num_servers));
        thresholds.push(min_ipc);
    }
    *calls += scenarios.len();
    let predicted = predictor.predict_batch_with_scratch(&scenarios, row_scratch);
    predicted
        .iter()
        .zip(&thresholds)
        .all(|(ipc, min_ipc)| ipc >= min_ipc)
}

/// Build a consolidation plan: repeatedly try to empty the server hosting
/// the fewest instances by migrating each of its instances onto the
/// most-populated feasible server, accepting each move only when all SLAs
/// still hold.
///
/// The entry list is *not* mutated; apply the returned migrations with
/// [`apply_plan`] (and the corresponding platform/cluster actions) if
/// accepted.
pub fn plan_consolidation(
    predictor: &GsightPredictor,
    entries: &[WorkloadEntry],
    num_servers: usize,
) -> ReschedulePlan {
    let mut working: Vec<WorkloadEntry> = entries
        .iter()
        .map(|e| WorkloadEntry {
            name: e.name.clone(),
            class: e.class,
            profile: e.profile.clone(),
            demands: e.demands.clone(),
            sla: e.sla,
            instances: e.instances.clone(),
        })
        .collect();
    let mut plan = ReschedulePlan::default();
    let mut row_scratch: Vec<f64> = Vec::new();

    loop {
        // Instance count per server.
        let mut count = vec![0usize; num_servers];
        for e in &working {
            for &(_, s) in &e.instances {
                count[s] += 1;
            }
        }
        let active: Vec<usize> = (0..num_servers).filter(|&s| count[s] > 0).collect();
        if active.len() < 2 {
            break;
        }
        // Donor: fewest instances; receivers: everything else, most-loaded
        // first.
        let &donor = active
            .iter()
            .min_by_key(|&&s| count[s])
            .expect("non-empty active set");
        let mut receivers: Vec<usize> = active.iter().copied().filter(|&s| s != donor).collect();
        receivers.sort_by_key(|&s| std::cmp::Reverse(count[s]));

        // Try to move every donor instance; if any cannot move, the donor
        // cannot be emptied and consolidation stops (moving a strict subset
        // would not free a server).
        let donor_instances: Vec<(usize, usize)> = working
            .iter()
            .enumerate()
            .flat_map(|(w, e)| {
                e.instances
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, s))| s == donor)
                    .map(move |(i, _)| (w, i))
            })
            .collect();
        let mut staged: Vec<Migration> = Vec::new();
        let mut ok = true;
        for (w, i) in donor_instances {
            let mut placed = false;
            for &to in &receivers {
                if slas_hold(
                    predictor,
                    &working,
                    Some((w, i, to)),
                    num_servers,
                    &mut plan.predictor_calls,
                    &mut row_scratch,
                ) {
                    staged.push(Migration {
                        entry: w,
                        workload: working[w].name.clone(),
                        instance: i,
                        from: donor,
                        to,
                    });
                    working[w].instances[i].1 = to;
                    placed = true;
                    break;
                }
            }
            if !placed {
                ok = false;
                break;
            }
        }
        if !ok {
            // Roll back the staged moves of this round, resolving each
            // entry by index (names may repeat across entries).
            for m in staged.iter().rev() {
                working[m.entry].instances[m.instance].1 = m.from;
            }
            break;
        }
        plan.migrations.extend(staged);
        plan.freed_servers.push(donor);
    }
    plan
}

/// Apply a plan to an entry list (the caller also performs the platform
/// migrations). Entries are resolved by [`Migration::entry`] index, so the
/// list must be the one (or a same-order copy of the one) the plan was
/// built from; duplicate workload names are fine.
pub fn apply_plan(entries: &mut [WorkloadEntry], plan: &ReschedulePlan) {
    for m in &plan.migrations {
        let e = &mut entries[m.entry];
        assert_eq!(e.instances[m.instance].1, m.from, "plan out of date");
        e.instances[m.instance].1 = m.to;
    }
}

/// Why a plan was rejected by [`apply_plan_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A migration's source no longer matches the entry list: placements
    /// changed (e.g. a crash re-homed instances) since the plan was built.
    Stale {
        /// Entry index of the mismatching migration.
        entry: usize,
        /// Instance index within the entry.
        instance: usize,
        /// Server the plan expected the instance on.
        expected: usize,
        /// Server the instance actually sits on.
        found: usize,
    },
    /// A migration targets a server that is no longer alive.
    DeadTarget {
        /// The dead target server.
        server: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Stale {
                entry,
                instance,
                expected,
                found,
            } => write!(
                f,
                "stale plan: entry {entry} instance {instance} expected on \
                 server {expected}, found on {found}"
            ),
            Self::DeadTarget { server } => {
                write!(f, "plan targets dead server {server}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Validating variant of [`apply_plan`] for use under fault injection: the
/// whole plan is checked against the current entry list and the server
/// liveness vector *before* any migration is applied, so a rejected plan
/// leaves `entries` untouched (instead of panicking half-applied, or
/// silently migrating instances onto a crashed server).
pub fn apply_plan_checked(
    entries: &mut [WorkloadEntry],
    plan: &ReschedulePlan,
    alive: &[bool],
) -> Result<(), PlanError> {
    // Dry-run over a scratch copy of the server assignments; later
    // migrations may legitimately move an instance a second time.
    let mut staged: Vec<Vec<usize>> = entries
        .iter()
        .map(|e| e.instances.iter().map(|&(_, s)| s).collect())
        .collect();
    for m in &plan.migrations {
        if !alive.get(m.to).copied().unwrap_or(false) {
            return Err(PlanError::DeadTarget { server: m.to });
        }
        let found = staged[m.entry][m.instance];
        if found != m.from {
            return Err(PlanError::Stale {
                entry: m.entry,
                instance: m.instance,
                expected: m.from,
                found,
            });
        }
        staged[m.entry][m.instance] = m.to;
    }
    for (e, servers) in entries.iter_mut().zip(staged) {
        for (inst, s) in e.instances.iter_mut().zip(servers) {
            inst.1 = s;
        }
    }
    Ok(())
}

/// Build a drain plan for crashed servers: every instance still recorded on
/// a dead server (`alive[s] == false`) is migrated onto an alive server.
/// Receivers are tried most-populated first (density objective) and the
/// first receiver where every SLA still holds wins; when no receiver passes
/// the SLA check the instance degrades to the *least*-loaded alive server —
/// a drain must evacuate, not block. Migrations never target a dead server.
pub fn plan_drain(
    predictor: &GsightPredictor,
    entries: &[WorkloadEntry],
    num_servers: usize,
    alive: &[bool],
) -> ReschedulePlan {
    assert_eq!(alive.len(), num_servers, "liveness vector length mismatch");
    let mut working: Vec<WorkloadEntry> = entries
        .iter()
        .map(|e| WorkloadEntry {
            name: e.name.clone(),
            class: e.class,
            profile: e.profile.clone(),
            demands: e.demands.clone(),
            sla: e.sla,
            instances: e.instances.clone(),
        })
        .collect();
    let mut plan = ReschedulePlan::default();
    let mut row_scratch: Vec<f64> = Vec::new();
    for dead in (0..num_servers).filter(|&s| !alive[s]) {
        let victims: Vec<(usize, usize)> = working
            .iter()
            .enumerate()
            .flat_map(|(w, e)| {
                e.instances
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, s))| s == dead)
                    .map(move |(i, _)| (w, i))
            })
            .collect();
        if victims.is_empty() {
            continue;
        }
        let mut drained = true;
        for (w, i) in victims {
            let mut count = vec![0usize; num_servers];
            for e in &working {
                for &(_, s) in &e.instances {
                    count[s] += 1;
                }
            }
            let mut receivers: Vec<usize> = (0..num_servers).filter(|&s| alive[s]).collect();
            receivers.sort_by_key(|&s| std::cmp::Reverse(count[s]));
            let to = receivers
                .iter()
                .copied()
                .find(|&to| {
                    slas_hold(
                        predictor,
                        &working,
                        Some((w, i, to)),
                        num_servers,
                        &mut plan.predictor_calls,
                        &mut row_scratch,
                    )
                })
                .or_else(|| receivers.last().copied());
            let Some(to) = to else {
                // No alive server at all: nothing can be drained.
                drained = false;
                break;
            };
            plan.migrations.push(Migration {
                entry: w,
                workload: working[w].name.clone(),
                instance: i,
                from: dead,
                to,
            });
            working[w].instances[i].1 = to;
        }
        if drained {
            plan.freed_servers.push(dead);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::SlaSpec;
    use gsight::{CodingConfig, GsightConfig, QosTarget};
    use metricsd::{FunctionProfile, Metric, MetricVector, ProfileSample, WorkloadProfile};
    use mlcore::ModelKind;
    use simcore::{SimRng, SimTime};
    use workloads::WorkloadClass;

    const S: usize = 4;

    fn profile(n: usize, ipc: f64) -> WorkloadProfile {
        let mut m = MetricVector::zero();
        m.set(Metric::Ipc, ipc);
        m.set(Metric::L3Mpki, 4.0);
        WorkloadProfile::new(
            "w",
            (0..n)
                .map(|i| {
                    FunctionProfile::new(
                        format!("f{i}"),
                        vec![ProfileSample {
                            at: SimTime::ZERO,
                            metrics: m,
                        }],
                        false,
                    )
                })
                .collect(),
        )
    }

    /// Ground truth: IPC shrinks with same-server overlap count.
    fn predictor() -> GsightPredictor {
        let config = GsightConfig {
            coding: CodingConfig {
                num_servers: S,
                max_workloads: 3,
            },
            target: QosTarget::Ipc,
            kind: ModelKind::Irfr,
            update_batch: 50,
            seed: 21,
        };
        let mut rng = SimRng::new(22);
        let mut samples = Vec::new();
        for _ in 0..1500 {
            let tp: Vec<usize> = (0..2).map(|_| rng.index(S)).collect();
            let op: Vec<usize> = (0..2).map(|_| rng.index(S)).collect();
            let overlap = tp.iter().filter(|s| op.contains(s)).count();
            let y = 2.0 / (1.0 + 0.15 * overlap as f64);
            let mk = |p: Vec<usize>, ipc: f64| {
                gsight::ColoWorkload::new(
                    profile(2, ipc),
                    WorkloadClass::LatencySensitive,
                    vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
                    p,
                )
            };
            samples.push((Scenario::new(mk(tp, 2.0), vec![mk(op, 1.0)], S), y));
        }
        let mut p = GsightPredictor::new(config);
        p.bootstrap(&samples);
        p
    }

    fn entry(name: &str, sla: Option<f64>, instances: Vec<(usize, usize)>) -> WorkloadEntry {
        WorkloadEntry {
            name: name.into(),
            class: WorkloadClass::LatencySensitive,
            profile: profile(2, if sla.is_some() { 2.0 } else { 1.0 }),
            demands: vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
            sla: SlaSpec { min_ipc: sla },
            instances,
        }
    }

    #[test]
    fn loose_slas_consolidate_to_one_server() {
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 2), (1, 3)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        assert!(
            !plan.freed_servers.is_empty(),
            "spread instances should consolidate: {plan:?}"
        );
        // Apply and verify the freed servers really are empty.
        let mut after = entries;
        apply_plan(&mut after, &plan);
        for &freed in &plan.freed_servers {
            for e in &after {
                assert!(e.instances.iter().all(|&(_, s)| s != freed));
            }
        }
    }

    #[test]
    fn tight_sla_blocks_consolidation() {
        let p = predictor();
        // Predicted IPC at full overlap ≈ 2/(1+0.15·2·2) < 1.9; requiring
        // 1.9 forbids stacking everything together.
        let entries = vec![
            entry("a", Some(1.95), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 1), (1, 1)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        assert!(
            plan.freed_servers.is_empty(),
            "tight SLA must block: {plan:?}"
        );
        assert!(plan.migrations.is_empty());
    }

    #[test]
    fn single_active_server_is_a_noop() {
        let p = predictor();
        let entries = vec![entry("a", Some(0.5), vec![(0, 1), (1, 1)])];
        let plan = plan_consolidation(&p, &entries, S);
        assert!(plan.migrations.is_empty());
        assert!(plan.freed_servers.is_empty());
    }

    #[test]
    fn checked_apply_rejects_stale_plan_without_mutating() {
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 2), (1, 3)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        let m = plan.migrations.first().expect("plan has moves").clone();
        let mut moved = entries;
        // A crash re-homed the instance after planning.
        let elsewhere = (m.from + 1) % S;
        moved[m.entry].instances[m.instance].1 = elsewhere;
        let before: Vec<Vec<(usize, usize)>> = moved.iter().map(|e| e.instances.clone()).collect();
        let err = apply_plan_checked(&mut moved, &plan, &[true; S]).unwrap_err();
        assert_eq!(
            err,
            PlanError::Stale {
                entry: m.entry,
                instance: m.instance,
                expected: m.from,
                found: elsewhere,
            }
        );
        let after: Vec<Vec<(usize, usize)>> = moved.iter().map(|e| e.instances.clone()).collect();
        assert_eq!(before, after, "rejected plan must leave entries untouched");
    }

    #[test]
    fn checked_apply_rejects_dead_target() {
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 2), (1, 3)]),
        ];
        // Plan computed pre-crash…
        let plan = plan_consolidation(&p, &entries, S);
        let target = plan.migrations.first().expect("plan has moves").to;
        // …then the target server dies before the plan is applied.
        let mut alive = [true; S];
        alive[target] = false;
        let mut moved = entries;
        let err = apply_plan_checked(&mut moved, &plan, &alive).unwrap_err();
        assert_eq!(err, PlanError::DeadTarget { server: target });
        // With everything alive the same plan applies cleanly.
        apply_plan_checked(&mut moved, &plan, &[true; S]).expect("plan applies");
    }

    #[test]
    #[should_panic(expected = "plan out of date")]
    fn stale_plan_rejected() {
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 2), (1, 3)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        let mut moved = entries;
        // Placement changed since planning.
        if let Some(m) = plan.migrations.first() {
            let e = &mut moved[m.entry];
            e.instances[m.instance].1 = 9_999 % S;
            if e.instances[m.instance].1 == m.from {
                e.instances[m.instance].1 = (m.from + 1) % S;
            }
        }
        apply_plan(&mut moved, &plan);
    }

    #[test]
    fn duplicate_names_resolve_by_entry_index() {
        // Regression: two distinct entries share the name "dup". The old
        // name-based resolution in apply_plan/rollback always picked the
        // first match, mutating the wrong entry (the stale-plan assert
        // fired spuriously). Resolution by entry index ignores the clash.
        let p = predictor();
        let entries = vec![
            entry("dup", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("dup", None, vec![(0, 2)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        assert!(
            plan.migrations.iter().all(|m| m.entry == 1),
            "only the second 'dup' occupies the donor: {plan:?}"
        );
        let mut after = entries;
        apply_plan(&mut after, &plan);
        assert_eq!(
            after[0].instances,
            vec![(0, 0), (1, 0)],
            "first 'dup' untouched"
        );
        for &freed in &plan.freed_servers {
            for e in &after {
                assert!(e.instances.iter().all(|&(_, s)| s != freed));
            }
        }
    }

    #[test]
    fn drain_never_targets_dead_server() {
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 1)]),
            entry("b", None, vec![(0, 0), (1, 2)]),
        ];
        // Server 0 crashed.
        let alive = [false, true, true, true];
        let plan = plan_drain(&p, &entries, S, &alive);
        assert!(!plan.migrations.is_empty(), "dead server must be drained");
        for m in &plan.migrations {
            assert_eq!(m.from, 0, "only the dead server is drained: {m:?}");
            assert!(alive[m.to], "migration targets dead server: {m:?}");
        }
        assert_eq!(plan.freed_servers, vec![0]);
        let mut after = entries;
        apply_plan_checked(&mut after, &plan, &alive).expect("plan applies");
        for e in &after {
            assert!(
                e.instances.iter().all(|&(_, s)| s != 0),
                "instance left on the crashed server: {:?}",
                e.instances
            );
        }
    }

    #[test]
    fn untouched_sla_entries_are_not_reevaluated() {
        // Entry "c" has an SLA but sits on server 3, which the first
        // round's move (donor 2 → receiver 0) never touches — its scenario
        // must not be re-evaluated, so the whole plan costs strictly fewer
        // scenario evaluations than the two-per-check naive pass.
        let p = predictor();
        let entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 0)]),
            entry("b", None, vec![(0, 2)]),
            entry("c", Some(0.5), vec![(0, 3), (1, 3)]),
        ];
        let plan = plan_consolidation(&p, &entries, S);
        assert!(
            !plan.migrations.is_empty(),
            "loose SLAs should allow consolidation: {plan:?}"
        );
        // Two SLA entries → a naive all-entries check costs 2 rows per
        // accepted move; the donor-2 round skips "c" (server 3 untouched).
        assert!(
            plan.predictor_calls < 2 * plan.migrations.len(),
            "skip must save evaluations: {} calls for {} migrations",
            plan.predictor_calls,
            plan.migrations.len()
        );
    }
}
