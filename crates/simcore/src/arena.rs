//! Arena-backed 4-ary index min-heap for event storage.
//!
//! The sharded engine's hot structures — per-shard pending-event heaps, the
//! coordinator overlay, the worker heaps — all order *large* payloads (an
//! engine event is tens of bytes) by a *small* totally-ordered key
//! `(at, seq)`. A `BinaryHeap<Entry<E>>` moves whole entries on every sift,
//! so each push/pop shuffles payload bytes `log2(n)` times, and handing a
//! heap across an epoch boundary costs a `mem::take` plus a re-collect of
//! every entry.
//!
//! [`EventHeap`] splits the two concerns:
//!
//! * a **slab** (`slots` + free list) stores each payload exactly once — a
//!   payload is written at push, read at pop, and never moved in between;
//! * a **4-ary index heap** (`keys`) orders 24-byte `(at, seq, slot)`
//!   entries. Four-way branching halves the tree depth of a binary heap,
//!   and the four children of a node share one or two cache lines, so a
//!   sift touches about half as many lines for the same comparison count.
//!
//! Pop order is exactly `BinaryHeap`'s min order on `(at, seq)`: the key is
//! unique (`seq` is globally unique), so the heap arity and the slab layout
//! cannot change which entry is the minimum — the structural half of the
//! byte-identity argument in [`crate::events`].

use crate::SimTime;

/// Heap key: timestamp, global sequence, and the slab slot of the payload.
/// Ordered by `(at, seq)`; `seq` uniqueness means the slot index never
/// participates in an ordering decision.
type Key = (SimTime, u64, u32);

/// Children per node. Four keeps sift-down comparisons per level cheap
/// (three extra compares against one swap) while halving tree depth.
const ARITY: usize = 4;

/// Min-heap of `(at, seq)`-keyed events whose payloads live in a slab and
/// never move after insertion.
pub struct EventHeap<E> {
    /// The index heap, in implicit d-ary layout.
    keys: Vec<Key>,
    /// Payload slab; `None` marks a free slot awaiting reuse.
    slots: Vec<Option<E>>,
    /// Free slots, reused LIFO so hot slots stay cache-resident.
    free: Vec<u32>,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// Empty heap.
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The minimum `(at, seq)` key, without popping.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.keys.first().map(|&(at, seq, _)| (at, seq))
    }

    /// Insert an event. The payload is written into its slab slot once; only
    /// the 24-byte key moves during the sift.
    pub fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event arena overflow");
                self.slots.push(Some(event));
                s
            }
        };
        self.keys.push((at, seq, slot));
        self.sift_up(self.keys.len() - 1);
    }

    /// Pop the minimum-keyed event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let &(at, seq, slot) = self.keys.first()?;
        let last = self.keys.pop().expect("non-empty heap has a last key");
        if !self.keys.is_empty() {
            self.keys[0] = last;
            self.sift_down(0);
        }
        let event = self.slots[slot as usize]
            .take()
            .expect("heap key pointed at a live slot");
        self.free.push(slot);
        Some((at, seq, event))
    }

    /// Move every event out in arbitrary order (used to hand a whole heap
    /// to a worker mailbox, which re-keys on absorb). Keeps the allocations.
    pub fn drain_unordered(&mut self, out: &mut Vec<(SimTime, u64, E)>) {
        out.reserve(self.keys.len());
        for &(at, seq, slot) in &self.keys {
            let event = self.slots[slot as usize]
                .take()
                .expect("heap key pointed at a live slot");
            out.push((at, seq, event));
        }
        self.keys.clear();
        self.free.clear();
        self.slots.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key_lt(key, self.keys[parent]) {
                self.keys[i] = self.keys[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.keys[i] = key;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.keys.len();
        let key = self.keys[i];
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            for c in (first + 1)..(first + ARITY).min(len) {
                if key_lt(self.keys[c], self.keys[best]) {
                    best = c;
                }
            }
            if key_lt(self.keys[best], key) {
                self.keys[i] = self.keys[best];
                i = best;
            } else {
                break;
            }
        }
        self.keys[i] = key;
    }
}

/// Strict `(at, seq)` order; the slot component is deliberately excluded so
/// slab reuse can never influence heap order (it could not anyway — `seq`
/// is unique — but excluding it makes that structural, not incidental).
#[inline]
fn key_lt(a: Key, b: Key) -> bool {
    (a.0, a.1) < (b.0, b.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_key_order_with_fifo_ties() {
        let mut h = EventHeap::new();
        h.push(SimTime(30), 0, "c");
        h.push(SimTime(10), 1, "a");
        h.push(SimTime(10), 2, "a2");
        h.push(SimTime(20), 3, "b");
        assert_eq!(h.peek_key(), Some((SimTime(10), 1)));
        assert_eq!(h.pop(), Some((SimTime(10), 1, "a")));
        assert_eq!(h.pop(), Some((SimTime(10), 2, "a2")));
        assert_eq!(h.pop(), Some((SimTime(20), 3, "b")));
        assert_eq!(h.pop(), Some((SimTime(30), 0, "c")));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn matches_binary_heap_under_random_interleaved_ops() {
        // Differential test: random push/pop interleavings must pop the
        // exact sequence a std BinaryHeap (min on (at, seq)) pops.
        let mut rng = SimRng::new(7);
        let mut h = EventHeap::new();
        let mut model: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for _ in 0..5_000 {
            if model.is_empty() || rng.f64() < 0.6 {
                let at = rng.next_u64() % 1_000;
                h.push(SimTime(at), seq, seq * 3);
                model.push(std::cmp::Reverse((at, seq)));
                seq += 1;
            } else {
                let got = h.pop().expect("model non-empty");
                let std::cmp::Reverse((at, s)) = model.pop().expect("non-empty");
                assert_eq!((got.0, got.1, got.2), (SimTime(at), s, s * 3));
            }
            assert_eq!(h.len(), model.len());
        }
        while let Some(std::cmp::Reverse((at, s))) = model.pop() {
            assert_eq!(h.pop(), Some((SimTime(at), s, s * 3)));
        }
        assert!(h.pop().is_none());
    }

    #[test]
    fn slab_slots_are_reused_not_grown() {
        let mut h = EventHeap::new();
        for round in 0..100u64 {
            for i in 0..8 {
                h.push(SimTime(round * 10 + i), round * 8 + i, i);
            }
            for _ in 0..8 {
                h.pop();
            }
        }
        assert!(
            h.slots.len() <= 8,
            "slab grew to {} slots for a working set of 8",
            h.slots.len()
        );
    }

    #[test]
    fn drain_unordered_moves_everything_out() {
        let mut h = EventHeap::new();
        for i in 0..50u64 {
            h.push(SimTime(i * 17 % 13), i, i);
        }
        let mut out = Vec::new();
        h.drain_unordered(&mut out);
        assert!(h.is_empty());
        assert_eq!(out.len(), 50);
        let mut seqs: Vec<u64> = out.iter().map(|&(_, s, _)| s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }
}
