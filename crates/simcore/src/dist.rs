//! Probability distributions used by the simulator and workload generators.
//!
//! Implemented directly on [`SimRng`] rather than pulling
//! in `rand_distr`, keeping the dependency surface to the offline-approved
//! set while still covering everything the reproduction needs: Gaussian
//! metric noise, log-normal service times, Poisson/exponential arrivals, and
//! Zipf-like popularity skew for function invocation frequencies.

use crate::rng::SimRng;

/// Standard normal sample via the Marsaglia polar method.
pub fn std_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.f64() - 1.0;
        let v = 2.0 * rng.f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal sample with the given mean and standard deviation.
#[inline]
pub fn normal(rng: &mut SimRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * std_normal(rng)
}

/// Log-normal sample parameterised by the *underlying* normal's `mu`/`sigma`.
#[inline]
pub fn lognormal(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * std_normal(rng)).exp()
}

/// Multiplicative noise factor centred on 1.0: `exp(N(0, sigma) - sigma²/2)`.
///
/// The mean-correction term keeps `E[factor] = 1`, so noising a metric does
/// not bias its expectation — important for the correlation study (Table 3).
#[inline]
pub fn noise_factor(rng: &mut SimRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    lognormal(rng, -sigma * sigma / 2.0, sigma)
}

/// Exponential sample with the given rate (`lambda`), i.e. mean `1/lambda`.
#[inline]
pub fn exponential(rng: &mut SimRng, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    // 1 - f64() is in (0, 1], so ln() is finite.
    -(1.0 - rng.f64()).ln() / lambda
}

/// Poisson sample.
///
/// Knuth's product method for small means; normal approximation (rounded,
/// clamped at zero) for large means where Knuth's loop would be slow.
pub fn poisson(rng: &mut SimRng, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0);
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, mean, mean.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Zipf sampler over ranks `1..=n` with exponent `s`.
///
/// Precomputes the CDF once; sampling is a binary search. Used to skew
/// invocation popularity across functions the way the Azure characterization
/// reports (a few hot functions dominate invocations).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Sample a rank in `[0, n)` (0-based).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // partition_point returns the count of entries < u, i.e. the first
        // index whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_positive() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(lognormal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn noise_factor_mean_one() {
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| noise_factor(&mut r, 0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_factor_zero_sigma_is_identity() {
        let mut r = rng();
        assert_eq!(noise_factor(&mut r, 0.0), 1.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 200.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(20, 1.1);
        let mut r = rng();
        let mut counts = [0usize; 20];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[19]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "should be near-uniform: {counts:?}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }
}
