//! Discrete-event simulation primitives: a microsecond-resolution clock and
//! a stable (FIFO tie-broken) event queue.
//!
//! Simulation time is an integer number of microseconds. Integer time makes
//! event ordering exact and platform-independent, which matters because the
//! reproduction promises bit-for-bit repeatable experiments.

use crate::arena::EventHeap;
use crate::shard_pool::{Keyed, ShardPool, SyncProfile};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: f64) -> SimTime {
        debug_assert!(s >= 0.0, "negative sim time");
        SimTime((s * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> SimTime {
        debug_assert!(ms >= 0.0, "negative sim time");
        SimTime((ms * 1e3).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference (`self - earlier`), clamped at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration.
    pub fn plus(self, d: SimTime) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.plus(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Buckets of the adaptive epoch-width histogram: bucket `i` counts epochs
/// whose width rounded down to whole milliseconds satisfies
/// `2^i <= ms < 2^(i+1)` (bucket 0 also takes sub-millisecond widths, the
/// last bucket everything wider).
pub const WIDTH_BUCKETS: usize = 16;

/// Counters describing one sharded run's epoch protocol, for the
/// conformance suite's barrier-ordering property and the throughput bench's
/// scaling report. Deliberately free of wall-clock state: these counters
/// are part of the byte-identity contract across thread counts (see
/// [`SyncProfile`] for the wall-clock side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BarrierStats {
    /// Drain epochs opened — each one is a worker rendezvous in threaded
    /// mode, so `delivered / epochs` is the events-per-barrier amortization.
    pub epochs: u64,
    /// Conservative delivery windows opened. Epochs batch windows: many
    /// windows (and their cross-shard truncations) run inside one epoch
    /// without touching the workers, so `windows >= epochs`.
    pub windows: u64,
    /// Events delivered through [`ShardedEventQueue::pop_in_window`].
    pub delivered: u64,
    /// Cross-shard events published while a delivery window was open.
    pub crossed: u64,
    /// The subset of `crossed` that already lay at or beyond the window
    /// bound when routed (no window shrink needed); the remainder closed
    /// the window early at their own timestamp.
    pub published: u64,
    /// Minimum observed slack of a cross-shard event against its sender's
    /// window close, in microseconds: `event.at - window_end` at publish
    /// time — a lower bound on the true slack, since the window can only
    /// shrink further, and exactly `0` for an event that shrank the window
    /// to its own timestamp. The conservative protocol guarantees this is
    /// `>= 0`: no cross-shard event executes before its sender's delivery
    /// window closes. `i64::MAX` until the first cross-shard event.
    pub min_slack_us: i64,
    /// Histogram of adaptive epoch widths (`bound - global head` at open),
    /// log2-bucketed in milliseconds — see [`WIDTH_BUCKETS`].
    pub width_hist: [u64; WIDTH_BUCKETS],
    /// Sum of adaptive epoch widths in whole milliseconds (the histogram's
    /// `_sum` in Prometheus terms; `width_sum_ms / epochs` is the mean
    /// adaptive width).
    pub width_sum_ms: u64,
}

impl BarrierStats {
    fn new() -> Self {
        Self {
            min_slack_us: i64::MAX,
            ..Self::default()
        }
    }

    /// Mean events delivered per drain epoch (per worker rendezvous).
    pub fn events_per_epoch(&self) -> f64 {
        self.delivered as f64 / (self.epochs.max(1)) as f64
    }
}

/// Head-cache sentinel for an empty shard heap: compares greater than every
/// real `(at, seq)` key, so `argmin` needs no emptiness branch.
const EMPTY_HEAD: (SimTime, u64) = (SimTime(u64::MAX), u64::MAX);

/// Coordinator-side state of the threaded backing: the shard heaps live in
/// a [`ShardPool`]'s workers, and the coordinator keeps only what one epoch
/// of serial dispatch needs.
///
/// Determinism argument, in one place: every decision that affects the
/// simulation — sequence assignment, window truncation, the `(at, seq)`
/// merge order of delivery — is taken on the coordinator thread, in the
/// same code and the same order as the single-threaded backing. Workers
/// only maintain heaps whose contents are fully determined by the posted
/// items, and every hand-off (mailbox post, drain stream, head slot) is
/// sequenced by a rendezvous. A different thread interleaving can change
/// when a heap absorbs a batch, never what the coordinator observes at the
/// next rendezvous — so the delivered event stream is byte-identical to the
/// single-threaded backing, which is byte-identical to the serial engine.
struct PoolBacking<E> {
    pool: ShardPool<E>,
    /// Per-shard sorted runs of the open epoch's staged events, as drained
    /// by the workers, stored in *descending* `(at, seq)` order so the
    /// epoch consumes each run from the back with O(1) moves.
    streams: Vec<Vec<Keyed<E>>>,
    /// Reused per-shard drain buffers: each epoch the workers swap fresh
    /// runs into these, and the coordinator splices any unconsumed stream
    /// tail behind them — no allocation on the per-epoch merge path.
    scratch: Vec<Vec<Keyed<E>>>,
    /// Events scheduled *during* dispatch that are still deliverable in the
    /// open epoch (timestamp below the epoch bound). They never reach a
    /// worker: the coordinator merges them with the drained runs directly.
    overlay: EventHeap<(u32, E)>,
    /// Per-shard batches awaiting a mailbox flush, accumulated so a flush
    /// costs one lock per shard per epoch (plus early flushes past
    /// [`FLUSH_BATCH`], which overlap worker heap pushes with dispatch).
    outbox: Vec<Vec<Keyed<E>>>,
    /// Per-shard pending-event counts (heap + mailbox + outbox + stream
    /// tail + overlay), mirroring the single-threaded backing's heap sizes
    /// exactly at every dispatch point — `shard_len` feeds checkpoints.
    lens: Vec<usize>,
}

/// Flush an outbox batch to its worker mailbox once it reaches this size,
/// so workers absorb (and heap-push) most routed events while the
/// coordinator is still dispatching the epoch.
const FLUSH_BATCH: usize = 64;

/// A set of per-shard event queues sharing one global clock and one global
/// sequence counter, synchronized by conservative time windows batched into
/// drain epochs.
///
/// The determinism contract: because `seq` is global and assigned in schedule
/// order, popping the global minimum `(at, seq)` across shard heaps
/// reproduces the pop order of a single [`EventQueue`] fed by the same
/// schedule calls — bit for bit, at any shard count.
///
/// Two nested horizons drive the protocol:
///
/// * **Epochs** ([`Self::open_epoch`]) bound how far ahead events are
///   *staged*. In threaded mode this is the drain rendezvous — the only
///   worker synchronization point: every worker pops its events below the
///   epoch bound into coordinator-side streams and republishes its heap
///   head. Anything routed below the bound of the open epoch afterwards
///   stays coordinator-side in the overlay, so between epochs the workers
///   are never consulted — that is what amortizes the rendezvous cost when
///   the caller widens the bound adaptively.
/// * **Windows** ([`Self::begin_window`]) bound what may be *delivered*,
///   exactly as in the classic conservative protocol. While a window is
///   open, a *cross-shard* schedule splits on the window bound: an event at
///   or beyond `end_excl` is published immediately — the bound already
///   proves it cannot become due this window — while an event that would
///   land *inside* the open window first shrinks the window to its own
///   timestamp and is then published. Either way the event sits at or
///   beyond the (possibly shrunk) window end, so [`Self::pop_in_window`]
///   cannot reach it until the window closes and a later window re-opens at
///   it: every cross-shard event executes at or after its sender's window
///   close — the barrier-ordering property the conformance suite checks —
///   and delivered events interleave in canonical `(at, seq)` merge order
///   because those are the heap keys.
///
/// Windows never outgrow their epoch (`begin_window` opens a fresh epoch
/// first if the requested bound lies beyond the current one), so staged
/// completeness — *everything below the epoch bound is coordinator-side* —
/// makes window delivery exact without touching a worker.
pub struct ShardedEventQueue<E> {
    shards: Vec<EventHeap<E>>,
    /// Cached `(at, seq)` minimum per shard heap ([`EMPTY_HEAD`] = empty).
    /// In threaded mode this tracks the *worker-side* minimum exactly: the
    /// drain rendezvous publishes each post-drain heap head, and every
    /// outbox route merges its key in coordinator-side.
    heads: Vec<(SimTime, u64)>,
    seq: u64,
    now: SimTime,
    /// Exclusive end of the open delivery window; `None` outside any window
    /// (setup phases route everything directly).
    window_end_excl: Option<SimTime>,
    /// Exclusive staging bound of the open drain epoch; `None` outside any
    /// epoch. Always at or beyond the window bound while both are open.
    epoch_bound: Option<SimTime>,
    /// Shard of the most recently popped event — the sender for routing.
    current_shard: usize,
    stats: BarrierStats,
    /// Configured worker-thread count (1 = single-threaded reference path).
    threads: usize,
    /// Threaded backing, active once [`Self::start_threads`] ran with
    /// `threads > 1`; the inline `shards` heaps are empty while active.
    pool: Option<PoolBacking<E>>,
}

impl<E> ShardedEventQueue<E> {
    /// Empty queue set at time zero. `shards` must be at least 1.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards: (0..shards).map(|_| EventHeap::new()).collect(),
            heads: vec![EMPTY_HEAD; shards],
            seq: 0,
            now: SimTime::ZERO,
            window_end_excl: None,
            epoch_bound: None,
            current_shard: 0,
            stats: BarrierStats::new(),
            threads: 1,
            pool: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Select the worker-thread count for epoch execution, clamped to the
    /// shard count. `1` (the default) keeps the single-threaded reference
    /// path; `t > 1` makes the next [`Self::start_threads`] move the shard
    /// heaps into a persistent [`ShardPool`]. Must be called before
    /// `start_threads`; the delivered event stream is bit-identical either
    /// way.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one thread");
        assert!(
            self.pool.is_none(),
            "set_threads must precede start_threads"
        );
        self.threads = threads.min(self.shards.len());
    }

    /// Worker threads configured for epoch execution (1 = single-threaded).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawn the worker pool and hand each worker its shards' heaps.
    /// Idempotent; a no-op on the single-threaded path (`threads == 1`).
    pub fn start_threads(&mut self)
    where
        E: Send + 'static,
    {
        if self.threads <= 1 || self.pool.is_some() {
            return;
        }
        let k = self.shards.len();
        let pool = ShardPool::start(k, self.threads);
        let mut lens = vec![0usize; k];
        let mut items: Vec<Keyed<E>> = Vec::new();
        for (s, heap) in self.shards.iter_mut().enumerate() {
            lens[s] = heap.len();
            heap.drain_unordered(&mut items);
            pool.post(s, &mut items);
        }
        pool.absorb_heads(&mut self.heads);
        self.pool = Some(PoolBacking {
            pool,
            streams: (0..k).map(|_| Vec::new()).collect(),
            scratch: (0..k).map(|_| Vec::new()).collect(),
            overlay: EventHeap::new(),
            outbox: (0..k).map(|_| Vec::new()).collect(),
            lens,
        });
    }

    /// Enable worker scheduling-jitter injection (test aid; threaded mode
    /// only). See [`ShardPool::set_jitter`].
    pub fn set_thread_jitter(&self, seed: u64) {
        if let Some(p) = &self.pool {
            p.pool.set_jitter(seed);
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total pending events.
    pub fn len(&self) -> usize {
        match &self.pool {
            Some(p) => p.lens.iter().sum(),
            None => self.shards.iter().map(EventHeap::len).sum(),
        }
    }

    /// Whether no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pending events homed on one shard — the per-shard checkpoint depth.
    /// In threaded mode this is the coordinator's mirror count (worker
    /// heap plus mailbox, outbox, stream tail and overlay), which equals
    /// the single-threaded backing's heap size at every dispatch point.
    pub fn shard_len(&self, shard: usize) -> usize {
        match &self.pool {
            Some(p) => p.lens[shard],
            None => self.shards[shard].len(),
        }
    }

    /// Epoch-protocol counters so far.
    pub fn stats(&self) -> BarrierStats {
        self.stats
    }

    /// Wall-clock rendezvous profile of the threaded backing (zero on the
    /// single-threaded path). Kept out of [`BarrierStats`] on purpose:
    /// stats are compared bit-for-bit across thread counts, wall time is
    /// not comparable.
    pub fn sync_profile(&self) -> SyncProfile {
        match &self.pool {
            Some(p) => p.pool.sync_profile(),
            None => SyncProfile::default(),
        }
    }

    /// Route `event` (homed on `shard`) at absolute time `at`.
    ///
    /// Same-shard events — and any event routed outside an open window — go
    /// straight toward the owning heap. A cross-shard event inside a window
    /// is published directly when it lies at or beyond the window bound
    /// ([`Self::pop_in_window`] cannot reach it this window, so the early
    /// visibility is unobservable); one inside the window first shrinks the
    /// window to its own timestamp — restoring that same bound — and is
    /// then published. The global sequence number is assigned here, in
    /// call order, regardless of path — that is what keeps the sharded pop
    /// order identical to the serial engine's.
    ///
    /// In threaded mode the *epoch* bound (not the window bound) decides
    /// where the event lands: below it the event stays coordinator-side in
    /// the overlay — it may become deliverable by a later window of this
    /// same epoch without any worker round-trip — at or beyond it the event
    /// is batched toward its worker's mailbox, with its key merged into the
    /// head cache so [`Self::peek_time`] stays exact between rendezvous.
    pub fn route(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        if shard != self.current_shard {
            if let Some(w) = self.window_end_excl {
                self.stats.crossed += 1;
                if at < w {
                    // Close the window at this event's timestamp: with the
                    // bound restored to `at`, the event cannot execute
                    // before its sender's window ends. Slack is exactly 0.
                    self.window_end_excl = Some(at);
                    self.stats.min_slack_us = self.stats.min_slack_us.min(0);
                } else {
                    // Beyond the open window: the bound already proves the
                    // event cannot execute this window.
                    self.stats.published += 1;
                    let slack = at.as_micros() as i64 - w.as_micros() as i64;
                    self.stats.min_slack_us = self.stats.min_slack_us.min(slack);
                }
            }
        }
        if let Some(p) = &mut self.pool {
            p.lens[shard] += 1;
            if self.epoch_bound.is_some_and(|b| at < b) {
                p.overlay.push(at, seq, (shard as u32, event));
            } else {
                let key = (at, seq);
                if key < self.heads[shard] {
                    self.heads[shard] = key;
                }
                p.outbox[shard].push((at, seq, event));
                if p.outbox[shard].len() >= FLUSH_BATCH {
                    p.pool.post(shard, &mut p.outbox[shard]);
                }
            }
        } else {
            let key = (at, seq);
            if key < self.heads[shard] {
                self.heads[shard] = key;
            }
            self.shards[shard].push(at, seq, event);
        }
    }

    /// Open a drain epoch with staging bound `bound` (exclusive): after this
    /// call, *every* pending event below `bound` is coordinator-side.
    ///
    /// In threaded mode this is the one worker rendezvous of the protocol:
    /// unposted outbox batches are flushed first (workers absorb their
    /// mailboxes before draining, so a posted event cannot miss its own
    /// epoch), every worker pops its below-bound run into the coordinator's
    /// streams and republishes its exact post-drain heap head. Unconsumed
    /// tails of a previous epoch's streams are spliced behind the fresh
    /// runs — their keys are strictly older, because an epoch only opens
    /// beyond the previous bound while staged events remain.
    pub fn open_epoch(&mut self, bound: SimTime) {
        if let Some(t0) = self.peek_time() {
            let ms = bound.0.saturating_sub(t0.0) / 1_000;
            let bucket = if ms <= 1 {
                0
            } else {
                (ms.ilog2() as usize).min(WIDTH_BUCKETS - 1)
            };
            self.stats.width_hist[bucket] += 1;
            self.stats.width_sum_ms = self.stats.width_sum_ms.saturating_add(ms);
        }
        self.stats.epochs += 1;
        self.epoch_bound = Some(bound);
        if let Some(p) = &mut self.pool {
            for s in 0..p.outbox.len() {
                if !p.outbox[s].is_empty() {
                    p.pool.post(s, &mut p.outbox[s]);
                }
            }
            p.pool.drain_epoch(bound, &mut p.scratch, &mut self.heads);
            for s in 0..p.scratch.len() {
                // Workers hand back ascending runs; the epoch consumes runs
                // from the back, so flip to descending and splice any
                // unconsumed older tail behind the fresh run.
                p.scratch[s].reverse();
                if !p.streams[s].is_empty() {
                    debug_assert!(
                        match (p.scratch[s].last(), p.streams[s].first()) {
                            (Some(&(n_at, n_seq, _)), Some(&(t_at, t_seq, _))) =>
                                (t_at, t_seq) < (n_at, n_seq),
                            _ => true,
                        },
                        "stream tail must be strictly older than the fresh run"
                    );
                    let mut tail = std::mem::take(&mut p.streams[s]);
                    p.scratch[s].append(&mut tail);
                    p.streams[s] = tail; // retain the (now empty) allocation
                }
                std::mem::swap(&mut p.scratch[s], &mut p.streams[s]);
            }
        }
    }

    /// Open a conservative delivery window ending (exclusively) at
    /// `end_excl`. If the requested bound lies beyond the current epoch (or
    /// no epoch is open), a drain epoch is opened at that bound first, so a
    /// caller that never touches [`Self::open_epoch`] gets the classic
    /// one-rendezvous-per-window protocol.
    pub fn begin_window(&mut self, end_excl: SimTime) {
        if self.epoch_bound.is_none_or(|b| end_excl > b) {
            self.open_epoch(end_excl);
        }
        self.window_end_excl = Some(end_excl);
        self.stats.windows += 1;
    }

    /// Close the delivery window: lift the window bound, making every
    /// cross-shard event published during it poppable by the next window.
    /// All delivery already happened at publish time; the bound was what
    /// kept it invisible. No worker interaction — window turnover inside an
    /// epoch is pure coordinator-side bookkeeping.
    pub fn end_window(&mut self) {
        self.window_end_excl = None;
    }

    /// Close the drain epoch (the engine does this once per `run_until`,
    /// after the event loop exhausts the horizon). Subsequent routes are
    /// batched toward the workers again.
    pub fn close_epoch(&mut self) {
        self.window_end_excl = None;
        self.epoch_bound = None;
    }

    /// Timestamp of the globally next event, ignoring window and epoch
    /// bounds. Exact in both backings at every point: the threaded backing
    /// tracks staged events directly and merges every outbox key into the
    /// worker head cache.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut min = self.heads[self.argmin()];
        if let Some(p) = &self.pool {
            for stream in &p.streams {
                if let Some(&(at, seq, _)) = stream.last() {
                    min = min.min((at, seq));
                }
            }
            if let Some(key) = p.overlay.peek_key() {
                min = min.min(key);
            }
        }
        let (at, _) = min;
        (at.0 != u64::MAX).then_some(at)
    }

    /// Pop the globally earliest in-window event, advancing the clock and
    /// marking its shard as the current sender. Returns `None` when the open
    /// window (or the whole queue set) is exhausted.
    pub fn pop_in_window(&mut self) -> Option<(SimTime, usize, E)> {
        if self.pool.is_some() {
            return self.pop_in_window_pooled();
        }
        let shard = self.argmin();
        let (at, _) = self.heads[shard];
        // One bound covers both exits: an empty queue set (`at` is the
        // sentinel) and an exhausted window.
        let bound = self.window_end_excl.unwrap_or(SimTime(u64::MAX));
        if at >= bound && (at.0 == u64::MAX || self.window_end_excl.is_some()) {
            return None;
        }
        let (at, _, event) = self.shards[shard].pop().expect("head pointed at an entry");
        self.heads[shard] = self.shards[shard].peek_key().unwrap_or(EMPTY_HEAD);
        self.now = at;
        self.current_shard = shard;
        self.stats.delivered += 1;
        Some((at, shard, event))
    }

    /// Threaded-backing pop: the globally earliest `(at, seq)` among the
    /// per-shard drained runs and the overlay of same-epoch schedules —
    /// exactly the candidates the single-threaded backing's `argmin` would
    /// surface inside this window, in the same canonical merge order.
    /// Staged completeness makes the window check sufficient: every event
    /// below the epoch bound is in a stream or the overlay, and the window
    /// bound never exceeds the epoch bound.
    fn pop_in_window_pooled(&mut self) -> Option<(SimTime, usize, E)> {
        let p = self.pool.as_mut().expect("pooled pop without a pool");
        let mut best_key = (SimTime(u64::MAX), u64::MAX);
        let mut best_shard = usize::MAX;
        for (s, stream) in p.streams.iter().enumerate() {
            if let Some(&(at, seq, _)) = stream.last() {
                if (at, seq) < best_key {
                    best_key = (at, seq);
                    best_shard = s;
                }
            }
        }
        let overlay_first = p.overlay.peek_key().is_some_and(|key| key < best_key);
        let at = if overlay_first {
            p.overlay.peek_key().expect("peeked overlay entry").0
        } else {
            best_key.0
        };
        if at.0 == u64::MAX {
            return None; // nothing staged for this epoch
        }
        if self.window_end_excl.is_some_and(|b| at >= b) {
            return None; // the window shrank below the staged minimum
        }
        self.stats.delivered += 1;
        if overlay_first {
            let (at, _, (shard, event)) = p.overlay.pop().expect("peeked overlay entry");
            let shard = shard as usize;
            p.lens[shard] -= 1;
            self.now = at;
            self.current_shard = shard;
            Some((at, shard, event))
        } else {
            let (at, _, event) = p.streams[best_shard].pop().expect("non-empty stream");
            p.lens[best_shard] -= 1;
            self.now = at;
            self.current_shard = best_shard;
            Some((at, best_shard, event))
        }
    }

    /// Shard index holding the globally smallest `(at, seq)` head (an empty
    /// shard's head is the always-greater [`EMPTY_HEAD`] sentinel).
    fn argmin(&self) -> usize {
        let mut best = 0usize;
        for s in 1..self.heads.len() {
            if self.heads[s] < self.heads[best] {
                best = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_millis(2.0).as_micros(), 2_000);
        assert!((SimTime::from_micros(500).as_millis() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simtime_since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(b.since(a), SimTime::from_secs(1.0));
        assert_eq!(a.since(b), SimTime::ZERO);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), 1);
        q.pop();
        q.schedule_in(SimTime(25), 2);
        assert_eq!(q.pop().unwrap(), (SimTime(75), 2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn sharded_pop_order_matches_serial_queue() {
        // Same schedule-call sequence into a serial queue and a 4-shard set
        // (arbitrary homing) must pop identically: the global seq counter is
        // the whole determinism argument.
        let plan: Vec<(u64, u64)> = (0..200).map(|i: u64| (i * 7919 % 97, i)).collect();
        let mut serial = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(4);
        for &(at, id) in &plan {
            serial.schedule(SimTime(at), id);
            sharded.route((id % 4) as usize, SimTime(at), id);
        }
        loop {
            let a = serial.pop();
            let b = sharded.pop_in_window().map(|(t, _, e)| (t, e));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cross_shard_events_wait_for_the_window_close() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(10), "a");
        assert_eq!(q.pop_in_window(), Some((SimTime(10), 0, "a"))); // sender = shard 0
        q.begin_window(SimTime(1000));
        q.route(1, SimTime(500), "cross"); // cross-shard: window shrinks to 500
        q.route(0, SimTime(200), "local"); // same-shard: direct
        assert_eq!(q.pop_in_window(), Some((SimTime(200), 0, "local")));
        // "cross" sits at the shrunk window bound: nothing poppable.
        assert_eq!(q.pop_in_window(), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.shard_len(1), 1);
        q.end_window();
        q.begin_window(SimTime(2000));
        assert_eq!(q.pop_in_window(), Some((SimTime(500), 1, "cross")));
        let stats = q.stats();
        assert_eq!(stats.crossed, 1);
        assert_eq!(stats.windows, 2);
        assert_eq!(stats.epochs, 2); // both windows outgrew the epoch bound
        assert_eq!(stats.min_slack_us, 0); // shrunk window closed exactly at 500
    }

    #[test]
    fn windows_inside_one_epoch_share_a_single_drain() {
        // An epoch opened wide enough covers several windows: only one
        // epoch (= one rendezvous in threaded mode) is recorded.
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(10), 1u64);
        q.route(1, SimTime(700), 2u64);
        q.open_epoch(SimTime(1000));
        q.begin_window(SimTime(300));
        assert_eq!(q.pop_in_window(), Some((SimTime(10), 0, 1)));
        assert_eq!(q.pop_in_window(), None);
        q.end_window();
        q.begin_window(SimTime(900));
        assert_eq!(q.pop_in_window(), Some((SimTime(700), 1, 2)));
        q.end_window();
        let stats = q.stats();
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.windows, 2);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn zero_delay_cross_shard_event_closes_the_window_immediately() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(100), 0u64);
        q.route(1, SimTime(100), 1u64);
        q.begin_window(SimTime(5000));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 0, 0))); // sender shard 0
        q.route(1, SimTime(100), 2); // zero-delay cross-shard: seq 2
                                     // Window shrank to 100 (exclusive): even the already-pending shard-1
                                     // event at t=100 must wait so global (at, seq) order survives.
        assert_eq!(q.pop_in_window(), None);
        q.end_window();
        q.begin_window(SimTime(5000));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 1, 1)));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 1, 2)));
        assert!(q.stats().min_slack_us >= 0);
    }

    #[test]
    fn sharded_len_counts_cross_shard_events_inside_a_window() {
        let mut q = ShardedEventQueue::new(3);
        q.route(0, SimTime(1), ());
        q.pop_in_window();
        q.begin_window(SimTime(100));
        q.route(1, SimTime(50), ());
        q.route(2, SimTime(60), ());
        q.route(0, SimTime(70), ());
        assert_eq!(q.len(), 3);
        q.end_window();
        assert_eq!(q.len(), 3);
        assert_eq!(q.shard_len(1), 1);
        assert_eq!(q.shard_len(2), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn sharded_route_into_past_panics() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(100), ());
        q.pop_in_window();
        q.route(1, SimTime(50), ());
    }

    /// Deterministic mini-simulation driving the epoch protocol the way the
    /// engine does: open an adaptively-widened drain epoch, run windows
    /// inside it until the staged events are exhausted, repeat — with each
    /// popped event deterministically spawning follow-ups (same-shard,
    /// cross-shard, and zero-delay cross-shard included). Returns the
    /// delivered stream; any two backings must produce it byte-for-byte.
    fn drive(
        q: &mut ShardedEventQueue<u64>,
        horizon: u64,
        lookahead: u64,
    ) -> Vec<(u64, usize, u64)> {
        let shards = q.shards() as u64;
        for i in 0..64u64 {
            q.route((i % shards) as usize, SimTime(i * 13 % 293), i);
        }
        let mut out = Vec::new();
        let mut mult = 1u64;
        while let Some(t0) = q.peek_time() {
            if t0.0 > horizon {
                break;
            }
            let bound = SimTime((t0.0 + lookahead * mult).min(horizon + 1));
            q.open_epoch(bound);
            let staged0 = q.stats().delivered;
            while let Some(w0) = q.peek_time() {
                if w0 >= bound || w0.0 > horizon {
                    break;
                }
                q.begin_window(SimTime((w0.0 + lookahead).min(horizon + 1).min(bound.0)));
                while let Some((at, shard, v)) = q.pop_in_window() {
                    out.push((at.0, shard, v));
                    let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ at.0;
                    if h % 3 != 0 {
                        let delta = h % 41;
                        let nv = h % 10_000;
                        // Zero-delay spawns must strictly shrink the value so
                        // same-instant chains terminate deterministically.
                        if at.0 + delta <= horizon && (delta > 0 || nv < v) {
                            q.route((h / 7 % shards) as usize, SimTime(at.0 + delta), nv);
                        }
                    }
                }
                q.end_window();
            }
            // Adaptive width controller, on delivered-event counts only —
            // byte-identical across backings by construction.
            let delivered = q.stats().delivered - staged0;
            if delivered < 8 {
                mult = (mult * 2).min(64);
            } else if delivered > 32 {
                mult = (mult / 2).max(1);
            }
        }
        q.close_epoch();
        out
    }

    #[test]
    fn threaded_backing_matches_single_threaded_backing_bit_for_bit() {
        let horizon = 400;
        for shards in [1usize, 2, 4, 8] {
            let mut reference = ShardedEventQueue::new(shards);
            let expect = drive(&mut reference, horizon, 20);
            assert!(!expect.is_empty());
            assert!(reference.stats().windows >= reference.stats().epochs);
            for threads in [2usize, 4] {
                let mut q = ShardedEventQueue::new(shards);
                q.set_threads(threads);
                q.start_threads();
                let got = drive(&mut q, horizon, 20);
                assert_eq!(got, expect, "shards {shards} threads {threads}");
                assert_eq!(q.stats(), reference.stats(), "stats diverged");
                assert_eq!(q.len(), reference.len(), "pending counts diverged");
                for s in 0..shards {
                    assert_eq!(q.shard_len(s), reference.shard_len(s), "shard {s} depth");
                }
            }
        }
    }

    #[test]
    fn outbox_drain_order_is_independent_of_thread_scheduling_jitter() {
        // The satellite property: injected worker scheduling jitter (random
        // pre-ack sleeps, seeded per run) must not change the delivered
        // stream, the epoch counters, or the pending depths — the
        // coordinator's rendezvous protocol, not thread timing, fixes the
        // drain order.
        let horizon = 400;
        let mut reference = ShardedEventQueue::new(8);
        let expect = drive(&mut reference, horizon, 20);
        for seed in 1..=5u64 {
            let mut q = ShardedEventQueue::new(8);
            q.set_threads(4);
            q.start_threads();
            q.set_thread_jitter(seed);
            let got = drive(&mut q, horizon, 20);
            assert_eq!(got, expect, "jitter seed {seed} changed the stream");
            assert_eq!(q.stats(), reference.stats(), "jitter seed {seed} stats");
        }
    }

    #[test]
    fn adaptive_epochs_batch_windows_between_rendezvous() {
        // The perf property behind the tentpole: with adaptive widening the
        // drive harness must run fewer epochs than windows (the threaded
        // backing pays one rendezvous per epoch, not per window), and the
        // width histogram must show widened epochs.
        let mut q = ShardedEventQueue::new(4);
        drive(&mut q, 4000, 20);
        let stats = q.stats();
        assert!(
            stats.windows > stats.epochs,
            "expected batched windows: {stats:?}"
        );
        assert_eq!(
            stats.width_hist.iter().sum::<u64>(),
            stats.epochs,
            "every epoch lands in exactly one width bucket"
        );
    }

    #[test]
    fn width_histogram_buckets_by_log2_milliseconds() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(0), 0u64);
        q.open_epoch(SimTime::from_millis(5.0)); // 5 ms  -> bucket 2
        q.begin_window(SimTime::from_millis(5.0));
        while q.pop_in_window().is_some() {}
        q.end_window();
        q.route(0, SimTime::from_millis(6.0), 1u64);
        q.open_epoch(SimTime::from_millis(46.0)); // 40 ms -> bucket 5
        q.begin_window(SimTime::from_millis(46.0));
        while q.pop_in_window().is_some() {}
        q.end_window();
        q.close_epoch();
        let hist = q.stats().width_hist;
        assert_eq!(hist[2], 1, "5 ms epoch: {hist:?}");
        assert_eq!(hist[5], 1, "40 ms epoch: {hist:?}");
        assert_eq!(hist.iter().sum::<u64>(), 2);
    }

    /// Satellite property test: fuzz the adaptive epoch/window protocol
    /// across seeds and widths against (a) the serial reference stream and
    /// (b) the conservative-delivery invariant — no event is delivered at
    /// or beyond the bound its window published when it opened (shrinks
    /// only lower the bound, so the opening bound is the weakest claim).
    #[test]
    fn fuzz_adaptive_lookahead_never_delivers_past_the_published_bound() {
        for seed in 0..24u64 {
            let horizon = 500 + (seed % 7) * 130;
            let shards = 1 + (seed as usize % 8);
            let mut rng = crate::SimRng::new(seed);

            // Serial reference: one EventQueue fed by the same spawn rule.
            let mut serial = EventQueue::new();
            let mut sharded = ShardedEventQueue::new(shards);
            for i in 0..48u64 {
                let at = (i * 29 + seed * 13) % 211;
                serial.schedule(SimTime(at), i);
                sharded.route((i as usize) % shards, SimTime(at), i);
            }
            let spawn = |at: u64, v: u64| -> Option<(u64, u64, usize)> {
                let h = v
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(21)
                    .wrapping_add(at);
                if h.is_multiple_of(4) {
                    return None;
                }
                let delta = h % 67;
                let nv = h % 9_973;
                (delta > 0 || nv < v).then_some((at + delta, nv, (h / 11) as usize % shards))
            };

            let mut expect = Vec::new();
            while let Some((at, v)) = serial.pop() {
                if at.0 > horizon {
                    break;
                }
                expect.push((at.0, v));
                if let Some((nat, nv, _)) = spawn(at.0, v) {
                    if nat <= horizon {
                        serial.schedule(SimTime(nat), nv);
                    }
                }
            }

            let mut got = Vec::new();
            while let Some(t0) = sharded.peek_time() {
                if t0.0 > horizon {
                    break;
                }
                // Random (but seeded) epoch width: 1..=512 lookahead units.
                let width = 1 + rng.next_u64() % 512;
                let bound = SimTime((t0.0 + width).min(horizon + 1));
                sharded.open_epoch(bound);
                while let Some(w0) = sharded.peek_time() {
                    if w0 >= bound || w0.0 > horizon {
                        break;
                    }
                    let window = 1 + rng.next_u64() % 64;
                    let end_excl = SimTime((w0.0 + window).min(horizon + 1).min(bound.0));
                    sharded.begin_window(end_excl);
                    while let Some((at, _, v)) = sharded.pop_in_window() {
                        assert!(
                            at < end_excl,
                            "seed {seed}: delivered {at:?} at/past the published bound {end_excl:?}"
                        );
                        got.push((at.0, v));
                        if let Some((nat, nv, ns)) = spawn(at.0, v) {
                            if nat <= horizon {
                                sharded.route(ns, SimTime(nat), nv);
                            }
                        }
                    }
                    sharded.end_window();
                }
            }
            sharded.close_epoch();
            assert_eq!(got, expect, "seed {seed}: stream diverged from serial");
            let stats = sharded.stats();
            assert!(
                stats.crossed == 0 || stats.min_slack_us >= 0,
                "seed {seed}: cross-shard event beat its window close: {stats:?}"
            );
        }
    }

    /// Satellite regression test: an in-window cross-shard event must
    /// shrink an adaptively *widened* window down to its own timestamp —
    /// on both backings — and be delivered only by a later window.
    #[test]
    fn widened_window_shrinks_on_in_window_cross_shard_event() {
        let run = |threads: usize| -> (Vec<(u64, usize, u64)>, BarrierStats) {
            let mut q = ShardedEventQueue::new(2);
            if threads > 1 {
                q.set_threads(threads);
                q.start_threads();
            }
            q.route(0, SimTime(100), 1u64);
            q.route(0, SimTime(9_000), 2u64);
            let mut out = Vec::new();
            // Adaptively widened epoch + window covering both events.
            q.open_epoch(SimTime(10_000));
            q.begin_window(SimTime(10_000));
            while let Some((at, shard, v)) = q.pop_in_window() {
                out.push((at.0, shard, v));
                if v == 1 {
                    // Cross-shard spawn inside the wide-open window: the
                    // window must shrink to 4_000; event 2 (t=9_000) must
                    // NOT deliver in this window anymore.
                    q.route(1, SimTime(4_000), 3u64);
                }
            }
            q.end_window();
            q.begin_window(SimTime(10_000));
            while let Some((at, shard, v)) = q.pop_in_window() {
                out.push((at.0, shard, v));
            }
            q.end_window();
            q.close_epoch();
            (out, q.stats())
        };
        let (serial, serial_stats) = run(1);
        assert_eq!(
            serial,
            vec![(100, 0, 1), (4_000, 1, 3), (9_000, 0, 2)],
            "the shrunk window must defer both later events"
        );
        assert_eq!(serial_stats.min_slack_us, 0);
        assert_eq!(serial_stats.crossed, 1);
        let (threaded, threaded_stats) = run(2);
        assert_eq!(threaded, serial, "backings diverged on the shrink path");
        assert_eq!(threaded_stats, serial_stats);
    }

    #[test]
    fn threads_are_clamped_to_shard_count() {
        let mut q = ShardedEventQueue::<u64>::new(2);
        q.set_threads(16);
        assert_eq!(q.threads(), 2);
        let mut single = ShardedEventQueue::new(1);
        single.set_threads(8);
        assert_eq!(single.threads(), 1);
        single.start_threads(); // clamped to 1: stays on the local backing
        single.route(0, SimTime(5), 1u64);
        assert_eq!(single.pop_in_window(), Some((SimTime(5), 0, 1)));
    }

    #[test]
    fn sync_profile_counts_rendezvous_only_in_threaded_mode() {
        let mut single = ShardedEventQueue::new(4);
        drive(&mut single, 400, 20);
        assert_eq!(single.sync_profile().rendezvous, 0);
        let mut q = ShardedEventQueue::new(4);
        q.set_threads(2);
        q.start_threads();
        drive(&mut q, 400, 20);
        let sync = q.sync_profile();
        // One absorb at start_threads + one drain per epoch.
        assert_eq!(sync.rendezvous, q.stats().epochs + 1);
    }
}
