//! Discrete-event simulation primitives: a microsecond-resolution clock and
//! a stable (FIFO tie-broken) event queue.
//!
//! Simulation time is an integer number of microseconds. Integer time makes
//! event ordering exact and platform-independent, which matters because the
//! reproduction promises bit-for-bit repeatable experiments.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: f64) -> SimTime {
        debug_assert!(s >= 0.0, "negative sim time");
        SimTime((s * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> SimTime {
        debug_assert!(ms >= 0.0, "negative sim time");
        SimTime((ms * 1e3).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference (`self - earlier`), clamped at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration.
    pub fn plus(self, d: SimTime) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.plus(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_millis(2.0).as_micros(), 2_000);
        assert!((SimTime::from_micros(500).as_millis() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simtime_since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(b.since(a), SimTime::from_secs(1.0));
        assert_eq!(a.since(b), SimTime::ZERO);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), 1);
        q.pop();
        q.schedule_in(SimTime(25), 2);
        assert_eq!(q.pop().unwrap(), (SimTime(75), 2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
