//! Discrete-event simulation primitives: a microsecond-resolution clock and
//! a stable (FIFO tie-broken) event queue.
//!
//! Simulation time is an integer number of microseconds. Integer time makes
//! event ordering exact and platform-independent, which matters because the
//! reproduction promises bit-for-bit repeatable experiments.

use crate::shard_pool::{Keyed, ShardPool};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: f64) -> SimTime {
        debug_assert!(s >= 0.0, "negative sim time");
        SimTime((s * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> SimTime {
        debug_assert!(ms >= 0.0, "negative sim time");
        SimTime((ms * 1e3).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference (`self - earlier`), clamped at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration.
    pub fn plus(self, d: SimTime) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.plus(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Counters describing one sharded run's barrier protocol, for the
/// conformance suite's barrier-ordering property and the throughput bench's
/// scaling report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BarrierStats {
    /// Time-window epochs opened (= barriers crossed).
    pub epochs: u64,
    /// Cross-shard events published while an epoch window was open.
    pub crossed: u64,
    /// The subset of `crossed` that already lay at or beyond the window
    /// bound when routed (no window shrink needed); the remainder closed
    /// the window early at their own timestamp.
    pub published: u64,
    /// Minimum observed slack of a cross-shard event against its sender's
    /// epoch close, in microseconds: `event.at - window_end` at publish
    /// time — a lower bound on the true slack, since the window can only
    /// shrink further, and exactly `0` for an event that shrank the window
    /// to its own timestamp. The conservative protocol guarantees this is
    /// `>= 0`: no cross-shard event executes before its sender's barrier
    /// epoch closes. `i64::MAX` until the first cross-shard event.
    pub min_slack_us: i64,
}

impl BarrierStats {
    fn new() -> Self {
        Self {
            min_slack_us: i64::MAX,
            ..Self::default()
        }
    }
}

/// Head-cache sentinel for an empty shard heap: compares greater than every
/// real `(at, seq)` key, so `argmin` needs no emptiness branch.
const EMPTY_HEAD: (SimTime, u64) = (SimTime(u64::MAX), u64::MAX);

/// Coordinator-side state of the threaded backing: the shard heaps live in
/// a [`ShardPool`]'s workers, and the coordinator keeps only what one epoch
/// of serial dispatch needs.
///
/// Determinism argument, in one place: every decision that affects the
/// simulation — sequence assignment, window truncation, the `(at, seq)`
/// merge order of delivery — is taken on the coordinator thread, in the
/// same code and the same order as the single-threaded backing. Workers
/// only maintain heaps whose contents are fully determined by the posted
/// items, and every hand-off (mailbox post, drain stream, head slot) is
/// sequenced by a rendezvous. A different thread interleaving can change
/// when a heap absorbs a batch, never what the coordinator observes at the
/// next rendezvous — so the delivered event stream is byte-identical to the
/// single-threaded backing, which is byte-identical to the serial engine.
struct PoolBacking<E> {
    pool: ShardPool<E>,
    /// Per-shard sorted runs of this epoch's in-window events, as drained
    /// by the workers, stored in *descending* `(at, seq)` order so the
    /// epoch consumes each run from the back with O(1) moves.
    streams: Vec<Vec<Keyed<E>>>,
    /// Events scheduled *during* dispatch that are still deliverable in the
    /// open window (same-epoch reschedules). They never reach a worker:
    /// the coordinator merges them with the drained runs directly.
    overlay: BinaryHeap<OverlayEntry<E>>,
    /// Per-shard batches awaiting a mailbox flush, accumulated so a flush
    /// costs one lock per shard per epoch (plus early flushes past
    /// [`FLUSH_BATCH`], which overlap worker heap pushes with dispatch).
    outbox: Vec<Vec<Keyed<E>>>,
    /// Per-shard pending-event counts (heap + mailbox + outbox + stream
    /// tail + overlay), mirroring the single-threaded backing's heap sizes
    /// exactly at every dispatch point — `shard_len` feeds checkpoints.
    lens: Vec<usize>,
}

/// Flush an outbox batch to its worker mailbox once it reaches this size,
/// so workers absorb (and heap-push) most routed events while the
/// coordinator is still dispatching the epoch.
const FLUSH_BATCH: usize = 64;

/// Overlay entry: a same-epoch event with its home shard, min-ordered by
/// `(at, seq)`.
struct OverlayEntry<E> {
    at: SimTime,
    seq: u64,
    shard: usize,
    event: E,
}

impl<E> PartialEq for OverlayEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for OverlayEntry<E> {}
impl<E> PartialOrd for OverlayEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverlayEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A set of per-shard event queues sharing one global clock and one global
/// sequence counter, synchronized by conservative time-window epochs.
///
/// The determinism contract: because `seq` is global and assigned in schedule
/// order, popping the global minimum `(at, seq)` across shard heaps
/// reproduces the pop order of a single [`EventQueue`] fed by the same
/// schedule calls — bit for bit, at any shard count.
///
/// The epoch protocol: [`ShardedEventQueue::begin_epoch`] opens a time window
/// `[now, end_excl)`. While a window is open, same-shard schedules go
/// straight into the owning heap. A *cross-shard* schedule splits on the
/// window bound: an event at or beyond `end_excl` is published into the
/// target heap immediately — the bound already proves it cannot become due
/// this epoch, so the early visibility is unobservable — while an event
/// that would land *inside* the open window first shrinks the window to its
/// own timestamp and is then published. Either way the event sits at or
/// beyond the (possibly shrunk) window end, so [`Self::pop_in_window`]
/// cannot reach it until [`ShardedEventQueue::barrier`] closes the epoch:
/// delivery is the heap push, visibility is gated by the window bound.
/// Every cross-shard event therefore executes at or after its sender's
/// epoch close — the barrier-ordering property the conformance suite
/// checks — and the delivered events interleave in canonical `(at, seq)`
/// merge order because those are the heap keys.
pub struct ShardedEventQueue<E> {
    shards: Vec<BinaryHeap<Entry<E>>>,
    /// Cached `(at, seq)` minimum per shard heap ([`EMPTY_HEAD`] = empty).
    /// In threaded mode this holds the worker-published heads, refreshed at
    /// every barrier's absorb rendezvous.
    heads: Vec<(SimTime, u64)>,
    seq: u64,
    now: SimTime,
    /// Exclusive end of the open epoch window; `None` outside any epoch
    /// (setup phases route everything directly).
    window_end_excl: Option<SimTime>,
    /// Shard of the most recently popped event — the sender for routing.
    current_shard: usize,
    stats: BarrierStats,
    /// Configured worker-thread count (1 = single-threaded reference path).
    threads: usize,
    /// Threaded backing, active once [`Self::start_threads`] ran with
    /// `threads > 1`; the inline `shards` heaps are empty while active.
    pool: Option<PoolBacking<E>>,
}

impl<E> ShardedEventQueue<E> {
    /// Empty queue set at time zero. `shards` must be at least 1.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            heads: vec![EMPTY_HEAD; shards],
            seq: 0,
            now: SimTime::ZERO,
            window_end_excl: None,
            current_shard: 0,
            stats: BarrierStats::new(),
            threads: 1,
            pool: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Select the worker-thread count for epoch execution, clamped to the
    /// shard count. `1` (the default) keeps the single-threaded reference
    /// path; `t > 1` makes the next [`Self::start_threads`] move the shard
    /// heaps into a persistent [`ShardPool`]. Must be called before
    /// `start_threads`; the delivered event stream is bit-identical either
    /// way.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one thread");
        assert!(
            self.pool.is_none(),
            "set_threads must precede start_threads"
        );
        self.threads = threads.min(self.shards.len());
    }

    /// Worker threads configured for epoch execution (1 = single-threaded).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawn the worker pool and hand each worker its shards' heaps.
    /// Idempotent; a no-op on the single-threaded path (`threads == 1`).
    pub fn start_threads(&mut self)
    where
        E: Send + 'static,
    {
        if self.threads <= 1 || self.pool.is_some() {
            return;
        }
        let k = self.shards.len();
        let pool = ShardPool::start(k, self.threads);
        let mut lens = vec![0usize; k];
        for (s, heap) in self.shards.iter_mut().enumerate() {
            lens[s] = heap.len();
            let mut items: Vec<Keyed<E>> = std::mem::take(heap)
                .into_iter()
                .map(|e| (e.at, e.seq, e.event))
                .collect();
            pool.post(s, &mut items);
        }
        pool.absorb_heads(&mut self.heads);
        self.pool = Some(PoolBacking {
            pool,
            streams: (0..k).map(|_| Vec::new()).collect(),
            overlay: BinaryHeap::new(),
            outbox: (0..k).map(|_| Vec::new()).collect(),
            lens,
        });
    }

    /// Enable worker scheduling-jitter injection (test aid; threaded mode
    /// only). See [`ShardPool::set_jitter`].
    pub fn set_thread_jitter(&self, seed: u64) {
        if let Some(p) = &self.pool {
            p.pool.set_jitter(seed);
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total pending events.
    pub fn len(&self) -> usize {
        match &self.pool {
            Some(p) => p.lens.iter().sum(),
            None => self.shards.iter().map(BinaryHeap::len).sum(),
        }
    }

    /// Whether no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pending events homed on one shard — the per-shard checkpoint depth.
    /// In threaded mode this is the coordinator's mirror count (worker
    /// heap plus mailbox, outbox, stream tail and overlay), which equals
    /// the single-threaded backing's heap size at every dispatch point.
    pub fn shard_len(&self, shard: usize) -> usize {
        match &self.pool {
            Some(p) => p.lens[shard],
            None => self.shards[shard].len(),
        }
    }

    /// Barrier-protocol counters so far.
    pub fn stats(&self) -> BarrierStats {
        self.stats
    }

    /// Route `event` (homed on `shard`) at absolute time `at`.
    ///
    /// Same-shard events — and any event routed outside an open epoch — go
    /// straight into the owning heap. A cross-shard event inside an epoch
    /// is published directly when it lies at or beyond the window bound
    /// ([`Self::pop_in_window`] cannot reach it this epoch, so the early
    /// visibility is unobservable); one inside the window first shrinks the
    /// window to its own timestamp — restoring that same bound — and is
    /// then published. The global sequence number is assigned here, in
    /// call order, regardless of path — that is what keeps the sharded pop
    /// order identical to the serial engine's.
    pub fn route(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        if shard != self.current_shard {
            if let Some(w) = self.window_end_excl {
                self.stats.crossed += 1;
                if at < w {
                    // Close the epoch at this event's timestamp: with the
                    // bound restored to `at`, the event cannot execute
                    // before its sender's epoch ends. Slack is exactly 0.
                    self.window_end_excl = Some(at);
                    self.stats.min_slack_us = self.stats.min_slack_us.min(0);
                } else {
                    // Beyond the open window: the bound already proves the
                    // event cannot execute this epoch.
                    self.stats.published += 1;
                    let slack = at.as_micros() as i64 - w.as_micros() as i64;
                    self.stats.min_slack_us = self.stats.min_slack_us.min(slack);
                }
            }
        }
        if let Some(p) = &mut self.pool {
            p.lens[shard] += 1;
            // Deliverable this epoch only when it lies inside the (possibly
            // just-shrunk) open window — those stay coordinator-side in the
            // overlay. Everything else belongs in a worker heap; batch it
            // toward the worker's mailbox so absorption overlaps dispatch.
            if self.window_end_excl.is_some_and(|b| at < b) {
                p.overlay.push(OverlayEntry {
                    at,
                    seq,
                    shard,
                    event,
                });
            } else {
                p.outbox[shard].push((at, seq, event));
                if p.outbox[shard].len() >= FLUSH_BATCH {
                    p.pool.post(shard, &mut p.outbox[shard]);
                }
            }
        } else {
            self.push_direct(shard, Entry { at, seq, event });
        }
    }

    fn push_direct(&mut self, shard: usize, entry: Entry<E>) {
        let key = (entry.at, entry.seq);
        if key < self.heads[shard] {
            self.heads[shard] = key;
        }
        self.shards[shard].push(entry);
    }

    /// Open a conservative time window ending (exclusively) at `end_excl`.
    ///
    /// In threaded mode this is the *drain rendezvous*: any outbox batches
    /// not yet flushed are posted first (workers absorb their mailboxes
    /// before draining, so a posted event cannot miss its own window), then
    /// every worker pops its in-window run into the coordinator's streams.
    pub fn begin_epoch(&mut self, end_excl: SimTime) {
        self.window_end_excl = Some(end_excl);
        self.stats.epochs += 1;
        if let Some(p) = &mut self.pool {
            for s in 0..p.outbox.len() {
                if !p.outbox[s].is_empty() {
                    p.pool.post(s, &mut p.outbox[s]);
                }
            }
            p.pool.drain_window(end_excl, &mut p.streams);
            // Workers hand back ascending runs; keep them reversed so the
            // epoch consumes each run from the back.
            for stream in &mut p.streams {
                stream.reverse();
            }
        }
    }

    /// Close the epoch: lift the window bound, making every cross-shard
    /// event published during it poppable. All delivery already happened at
    /// publish time; the bound was what kept it invisible.
    ///
    /// In threaded mode this is the *absorb rendezvous*: undelivered epoch
    /// state — unconsumed stream tails (the window may have shrunk below
    /// them) plus overlay leftovers — is handed back to the worker heaps,
    /// and the head cache is refreshed once every mailbox is absorbed.
    pub fn barrier(&mut self) {
        self.window_end_excl = None;
        if let Some(p) = &mut self.pool {
            for s in 0..p.streams.len() {
                p.outbox[s].append(&mut p.streams[s]);
            }
            while let Some(o) = p.overlay.pop() {
                p.outbox[o.shard].push((o.at, o.seq, o.event));
            }
            for s in 0..p.outbox.len() {
                if !p.outbox[s].is_empty() {
                    p.pool.post(s, &mut p.outbox[s]);
                }
            }
            p.pool.absorb_heads(&mut self.heads);
        }
    }

    /// Timestamp of the globally next event, ignoring the window.
    ///
    /// In threaded mode the worker-published heads are exact at the
    /// post-[`Self::barrier`] rendezvous — the only point the engine peeks;
    /// mid-epoch they lag by whatever sits in unposted outboxes.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut min = self.heads[self.argmin()];
        if let Some(p) = &self.pool {
            for stream in &p.streams {
                if let Some(&(at, seq, _)) = stream.last() {
                    min = min.min((at, seq));
                }
            }
            if let Some(o) = p.overlay.peek() {
                min = min.min((o.at, o.seq));
            }
        }
        let (at, _) = min;
        (at.0 != u64::MAX).then_some(at)
    }

    /// Pop the globally earliest in-window event, advancing the clock and
    /// marking its shard as the current sender. Returns `None` when the open
    /// window (or the whole queue set) is exhausted.
    pub fn pop_in_window(&mut self) -> Option<(SimTime, usize, E)> {
        if self.pool.is_some() {
            return self.pop_in_window_pooled();
        }
        let shard = self.argmin();
        let (at, _) = self.heads[shard];
        // One bound covers both exits: an empty queue set (`at` is the
        // sentinel) and an exhausted window.
        let bound = self.window_end_excl.unwrap_or(SimTime(u64::MAX));
        if at >= bound && (at.0 == u64::MAX || self.window_end_excl.is_some()) {
            return None;
        }
        let entry = self.shards[shard].pop().expect("head pointed at an entry");
        self.heads[shard] = self.shards[shard]
            .peek()
            .map_or(EMPTY_HEAD, |e| (e.at, e.seq));
        self.now = entry.at;
        self.current_shard = shard;
        Some((entry.at, shard, entry.event))
    }

    /// Threaded-backing pop: the globally earliest `(at, seq)` among the
    /// per-shard drained runs and the overlay of same-epoch schedules —
    /// exactly the candidates the single-threaded backing's `argmin` would
    /// surface inside this window, in the same canonical merge order.
    fn pop_in_window_pooled(&mut self) -> Option<(SimTime, usize, E)> {
        let p = self.pool.as_mut().expect("pooled pop without a pool");
        let mut best_key = (SimTime(u64::MAX), u64::MAX);
        let mut best_shard = usize::MAX;
        for (s, stream) in p.streams.iter().enumerate() {
            if let Some(&(at, seq, _)) = stream.last() {
                if (at, seq) < best_key {
                    best_key = (at, seq);
                    best_shard = s;
                }
            }
        }
        let overlay_first = p.overlay.peek().is_some_and(|o| (o.at, o.seq) < best_key);
        let at = if overlay_first {
            p.overlay.peek().expect("peeked overlay entry").at
        } else {
            best_key.0
        };
        if at.0 == u64::MAX {
            return None; // nothing staged for this epoch
        }
        if self.window_end_excl.is_some_and(|b| at >= b) {
            return None; // the window shrank below the staged minimum
        }
        if overlay_first {
            let o = p.overlay.pop().expect("peeked overlay entry");
            p.lens[o.shard] -= 1;
            self.now = o.at;
            self.current_shard = o.shard;
            Some((o.at, o.shard, o.event))
        } else {
            let (at, _, event) = p.streams[best_shard].pop().expect("non-empty stream");
            p.lens[best_shard] -= 1;
            self.now = at;
            self.current_shard = best_shard;
            Some((at, best_shard, event))
        }
    }

    /// Shard index holding the globally smallest `(at, seq)` head (an empty
    /// shard's head is the always-greater [`EMPTY_HEAD`] sentinel).
    fn argmin(&self) -> usize {
        let mut best = 0usize;
        for s in 1..self.heads.len() {
            if self.heads[s] < self.heads[best] {
                best = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_millis(2.0).as_micros(), 2_000);
        assert!((SimTime::from_micros(500).as_millis() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simtime_since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(b.since(a), SimTime::from_secs(1.0));
        assert_eq!(a.since(b), SimTime::ZERO);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), 1);
        q.pop();
        q.schedule_in(SimTime(25), 2);
        assert_eq!(q.pop().unwrap(), (SimTime(75), 2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn sharded_pop_order_matches_serial_queue() {
        // Same schedule-call sequence into a serial queue and a 4-shard set
        // (arbitrary homing) must pop identically: the global seq counter is
        // the whole determinism argument.
        let plan: Vec<(u64, u64)> = (0..200).map(|i: u64| (i * 7919 % 97, i)).collect();
        let mut serial = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(4);
        for &(at, id) in &plan {
            serial.schedule(SimTime(at), id);
            sharded.route((id % 4) as usize, SimTime(at), id);
        }
        loop {
            let a = serial.pop();
            let b = sharded.pop_in_window().map(|(t, _, e)| (t, e));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cross_shard_events_wait_for_the_barrier() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(10), "a");
        assert_eq!(q.pop_in_window(), Some((SimTime(10), 0, "a"))); // sender = shard 0
        q.begin_epoch(SimTime(1000));
        q.route(1, SimTime(500), "cross"); // cross-shard: window shrinks to 500
        q.route(0, SimTime(200), "local"); // same-shard: direct
        assert_eq!(q.pop_in_window(), Some((SimTime(200), 0, "local")));
        // "cross" sits at the shrunk window bound: nothing poppable.
        assert_eq!(q.pop_in_window(), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.shard_len(1), 1);
        q.barrier();
        q.begin_epoch(SimTime(2000));
        assert_eq!(q.pop_in_window(), Some((SimTime(500), 1, "cross")));
        let stats = q.stats();
        assert_eq!(stats.crossed, 1);
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.min_slack_us, 0); // shrunk window closed exactly at 500
    }

    #[test]
    fn zero_delay_cross_shard_event_closes_the_window_immediately() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(100), 0u64);
        q.route(1, SimTime(100), 1u64);
        q.begin_epoch(SimTime(5000));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 0, 0))); // sender shard 0
        q.route(1, SimTime(100), 2); // zero-delay cross-shard: seq 2
                                     // Window shrank to 100 (exclusive): even the already-pending shard-1
                                     // event at t=100 must wait so global (at, seq) order survives.
        assert_eq!(q.pop_in_window(), None);
        q.barrier();
        q.begin_epoch(SimTime(5000));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 1, 1)));
        assert_eq!(q.pop_in_window(), Some((SimTime(100), 1, 2)));
        assert!(q.stats().min_slack_us >= 0);
    }

    #[test]
    fn sharded_len_counts_cross_shard_events_inside_an_epoch() {
        let mut q = ShardedEventQueue::new(3);
        q.route(0, SimTime(1), ());
        q.pop_in_window();
        q.begin_epoch(SimTime(100));
        q.route(1, SimTime(50), ());
        q.route(2, SimTime(60), ());
        q.route(0, SimTime(70), ());
        assert_eq!(q.len(), 3);
        q.barrier();
        assert_eq!(q.len(), 3);
        assert_eq!(q.shard_len(1), 1);
        assert_eq!(q.shard_len(2), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn sharded_route_into_past_panics() {
        let mut q = ShardedEventQueue::new(2);
        q.route(0, SimTime(100), ());
        q.pop_in_window();
        q.route(1, SimTime(50), ());
    }

    /// Deterministic mini-simulation driving the epoch protocol the way the
    /// engine does: barrier → peek → begin_epoch → pop loop, with each
    /// popped event deterministically spawning follow-ups (same-shard,
    /// cross-shard, and zero-delay cross-shard included). Returns the
    /// delivered stream; any two backings must produce it byte-for-byte.
    fn drive(
        q: &mut ShardedEventQueue<u64>,
        horizon: u64,
        lookahead: u64,
    ) -> Vec<(u64, usize, u64)> {
        let shards = q.shards() as u64;
        for i in 0..64u64 {
            q.route((i % shards) as usize, SimTime(i * 13 % 293), i);
        }
        let mut out = Vec::new();
        loop {
            q.barrier();
            let Some(t0) = q.peek_time() else { break };
            if t0.0 > horizon {
                break;
            }
            q.begin_epoch(SimTime((t0.0 + lookahead).min(horizon + 1)));
            while let Some((at, shard, v)) = q.pop_in_window() {
                out.push((at.0, shard, v));
                let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ at.0;
                if h % 3 != 0 {
                    let delta = h % 41;
                    let nv = h % 10_000;
                    // Zero-delay spawns must strictly shrink the value so
                    // same-instant chains terminate deterministically.
                    if at.0 + delta <= horizon && (delta > 0 || nv < v) {
                        q.route((h / 7 % shards) as usize, SimTime(at.0 + delta), nv);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn threaded_backing_matches_single_threaded_backing_bit_for_bit() {
        let horizon = 400;
        for shards in [1usize, 2, 4, 8] {
            let mut reference = ShardedEventQueue::new(shards);
            let expect = drive(&mut reference, horizon, 20);
            assert!(!expect.is_empty());
            for threads in [2usize, 4] {
                let mut q = ShardedEventQueue::new(shards);
                q.set_threads(threads);
                q.start_threads();
                let got = drive(&mut q, horizon, 20);
                assert_eq!(got, expect, "shards {shards} threads {threads}");
                assert_eq!(q.stats(), reference.stats(), "stats diverged");
                assert_eq!(q.len(), reference.len(), "pending counts diverged");
                for s in 0..shards {
                    assert_eq!(q.shard_len(s), reference.shard_len(s), "shard {s} depth");
                }
            }
        }
    }

    #[test]
    fn outbox_drain_order_is_independent_of_thread_scheduling_jitter() {
        // The satellite property: injected worker scheduling jitter (random
        // pre-ack sleeps, seeded per run) must not change the delivered
        // stream, the barrier counters, or the pending depths — the
        // coordinator's rendezvous protocol, not thread timing, fixes the
        // drain order.
        let horizon = 400;
        let mut reference = ShardedEventQueue::new(8);
        let expect = drive(&mut reference, horizon, 20);
        for seed in 1..=5u64 {
            let mut q = ShardedEventQueue::new(8);
            q.set_threads(4);
            q.start_threads();
            q.set_thread_jitter(seed);
            let got = drive(&mut q, horizon, 20);
            assert_eq!(got, expect, "jitter seed {seed} changed the stream");
            assert_eq!(q.stats(), reference.stats(), "jitter seed {seed} stats");
        }
    }

    #[test]
    fn threads_are_clamped_to_shard_count() {
        let mut q = ShardedEventQueue::<u64>::new(2);
        q.set_threads(16);
        assert_eq!(q.threads(), 2);
        let mut single = ShardedEventQueue::new(1);
        single.set_threads(8);
        assert_eq!(single.threads(), 1);
        single.start_threads(); // clamped to 1: stays on the local backing
        single.route(0, SimTime(5), 1u64);
        assert_eq!(single.pop_in_window(), Some((SimTime(5), 0, 1)));
    }
}
