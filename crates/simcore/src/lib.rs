//! `simcore` — deterministic simulation substrate shared by every crate in
//! the workspace.
//!
//! Provides:
//!
//! * [`rng`] — a seedable, splittable `xoshiro256**` generator so that every
//!   experiment in the reproduction is bit-for-bit repeatable.
//! * [`dist`] — the handful of distributions the simulator needs (normal,
//!   log-normal, exponential, Poisson, Zipf) implemented directly on top of
//!   the local RNG to keep the dependency surface small.
//! * [`stats`] — summary statistics (Welford online moments, percentiles,
//!   CDFs, coefficient of variation) used both by the metric collector and by
//!   the experiment harness.
//! * [`events`] — a discrete-event queue with stable FIFO tie-breaking and a
//!   microsecond-resolution simulation clock, plus the sharded queue set
//!   behind the parallel engine (conservative windows batched into adaptive
//!   drain epochs).
//! * [`arena`] — the slab-backed 4-ary index heap the sharded queues store
//!   events in: payloads never move after insertion, only 24-byte keys sift.
//! * [`par`] — order-preserving parallel maps on scoped threads for the
//!   embarrassingly parallel experiment sweeps.
//! * [`shard_pool`] — the persistent worker pool behind the threaded shard
//!   backing of [`ShardedEventQueue`]: per-shard mailboxes, heap ownership,
//!   and the absorb/drain barrier rendezvous.
//! * [`table`] — plain-text table rendering for regenerated paper tables.
//!
//! # Examples
//!
//! ```
//! use simcore::{EventQueue, SimRng, SimTime, Summary};
//!
//! // Deterministic RNG: same seed, same stream.
//! let mut rng = SimRng::new(42);
//! let a = rng.f64();
//! assert_eq!(SimRng::new(42).f64(), a);
//!
//! // Discrete-event queue with FIFO tie-breaking.
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(2.0), "late");
//! q.schedule(SimTime::from_millis(1.0), "early");
//! assert_eq!(q.pop().unwrap().1, "early");
//!
//! // One-shot sample summaries.
//! let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! ```

pub mod arena;
pub mod dist;
pub mod events;
pub mod par;
pub mod rng;
pub mod shard_pool;
pub mod stats;
pub mod table;

pub use arena::EventHeap;
pub use events::{BarrierStats, EventQueue, ShardedEventQueue, SimTime, WIDTH_BUCKETS};
pub use rng::{seed_stream, SimRng};
pub use shard_pool::SyncProfile;
pub use stats::{percentile, percentile_sorted, Cdf, OnlineStats, Reservoir, Summary};
