//! Order-preserving parallel maps on scoped threads.
//!
//! The experiment sweeps and forest training are embarrassingly parallel:
//! independent jobs, each seeded through [`crate::seed_stream`], whose
//! results are collected in input order. [`par_map`] covers that shape with
//! `std::thread::scope` — no work stealing, no external dependency — by
//! splitting the input into one contiguous chunk per available core.
//! Determinism is unaffected: job `i` computes the same value regardless of
//! which thread runs it, and outputs are reassembled in input order.

use std::num::NonZeroUsize;

/// Number of worker threads to use for `n` jobs.
fn threads_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// `f` must be `Sync` (it is shared by reference across workers) and is
/// called exactly once per item. Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads_for(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            handles.push(scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()));
        }
        // Joining in spawn order concatenates chunks back in input order.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// Map `f` over `0..n` in parallel, preserving index order — the common
/// "generate the i-th sample" shape of the corpus sweeps.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect::<Vec<i64>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn range_variant() {
        assert_eq!(par_map_range(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn non_copy_items_moved_once() {
        let items: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn matches_sequential_for_seeded_work() {
        let seq: Vec<u64> = (0..100u64).map(|i| crate::seed_stream(42, i)).collect();
        let par = par_map_range(100, |i| crate::seed_stream(42, i as u64));
        assert_eq!(seq, par);
    }
}
