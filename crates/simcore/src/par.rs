//! Order-preserving parallel maps on scoped threads.
//!
//! The experiment sweeps, forest training, and the batched prediction
//! pipeline are embarrassingly parallel: independent jobs, each seeded
//! through [`crate::seed_stream`], whose results are collected in input
//! order. [`par_map`] covers that shape with `std::thread::scope` — no work
//! stealing, no external dependency — using *chunked self-scheduling*:
//! workers repeatedly pull small batches of jobs off a shared queue, so
//! skewed per-item costs (trees of different depth, scenarios of different
//! size) do not serialise the whole map on whichever contiguous chunk
//! happened to be slowest. Determinism is unaffected: job `i` computes the
//! same value regardless of which thread runs it, and outputs are
//! reassembled in input order.

use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

/// Cached worker parallelism: the `GSIGHT_WORKERS` environment override
/// when set to a positive integer, the hardware parallelism otherwise.
///
/// `std::thread::available_parallelism()` is a syscall (it reads cgroup
/// quotas on Linux); per-batch callers on the prediction and training hot
/// paths were paying it once per call. The value cannot change for the
/// lifetime of the process in any environment we run in, so it is resolved
/// once and memoised — which also means `GSIGHT_WORKERS` is read exactly
/// once, at the first call: CI and benchmarks set it before launch to pin
/// thread counts reproducibly (see README "Determinism").
pub fn available_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        workers_from(std::env::var("GSIGHT_WORKERS").ok().as_deref(), hw)
    })
}

/// Resolve the worker count from the `GSIGHT_WORKERS` override and the
/// hardware parallelism. A positive integer wins — even above the core
/// count, so oversubscription is testable — anything absent, empty,
/// malformed, or zero falls back to the hardware value. Pure so the
/// resolution rules stay regression-testable despite the memoised,
/// process-global reader above.
fn workers_from(env_override: Option<&str>, hw: usize) -> usize {
    match env_override
        .map(str::trim)
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => hw.max(1),
    }
}

/// Number of worker threads to use for `n` jobs.
fn threads_for(n: usize) -> usize {
    available_workers().min(n).max(1)
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// `f` must be `Sync` (it is shared by reference across workers) and is
/// called exactly once per item. Panics in `f` propagate to the caller with
/// the worker's original panic payload.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = threads_for(items.len());
    par_map_workers(items, workers, f)
}

/// [`par_map`] with an explicit worker count (capped at the item count).
///
/// Exposed so callers — and the determinism tests — can pin the thread
/// count; `workers == 1` runs inline without spawning.
pub fn par_map_workers<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Chunked self-scheduling: small batches amortise the queue lock while
    // keeping enough grains in flight that a few expensive items cannot
    // leave the other workers idle (the failure mode of the previous
    // one-contiguous-chunk-per-core split).
    let chunk = (n / (workers * 8)).max(1);
    let f = &f;
    let queue = Mutex::new(items.into_iter().enumerate());
    let queue = &queue;
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        // A panicking worker poisons the lock mid-drain; the
                        // survivors keep draining and the payload is
                        // re-thrown at join time.
                        let batch: Vec<(usize, T)> = {
                            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                            q.by_ref().take(chunk).collect()
                        };
                        if batch.is_empty() {
                            break;
                        }
                        for (i, item) in batch {
                            local.push((i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        let mut acc: Vec<(usize, U)> = Vec::with_capacity(n);
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(part) => acc.extend(part),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        acc
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

/// Map `f` over `0..n` in parallel, preserving index order — the common
/// "generate the i-th sample" shape of the corpus sweeps.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_workers_cached_and_positive() {
        let w = available_workers();
        assert!(w >= 1);
        // Memoised: repeated calls agree (and cost no further syscalls).
        assert_eq!(available_workers(), w);
    }

    #[test]
    fn gsight_workers_override_rules() {
        // The memoised reader resolves through this pure function, so the
        // override contract is pinned here without racing other tests on
        // process-global environment state.
        assert_eq!(workers_from(Some("3"), 8), 3);
        assert_eq!(workers_from(Some(" 2 "), 8), 2, "whitespace is trimmed");
        assert_eq!(workers_from(Some("16"), 2), 16, "override may exceed hw");
        assert_eq!(workers_from(Some("0"), 8), 8, "zero is rejected");
        assert_eq!(workers_from(Some(""), 8), 8, "empty is rejected");
        assert_eq!(workers_from(Some("four"), 8), 8, "garbage is rejected");
        assert_eq!(workers_from(Some("-1"), 8), 8, "negatives are rejected");
        assert_eq!(workers_from(None, 8), 8, "absent falls back to hw");
        assert_eq!(workers_from(None, 0), 1, "hw floor is 1");
    }

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect::<Vec<i64>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn range_variant() {
        assert_eq!(par_map_range(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn non_copy_items_moved_once() {
        let items: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn matches_sequential_for_seeded_work() {
        let seq: Vec<u64> = (0..100u64).map(|i| crate::seed_stream(42, i)).collect();
        let par = par_map_range(100, |i| crate::seed_stream(42, i as u64));
        assert_eq!(seq, par);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<i64> = (0..257).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x - 3).collect();
        for workers in [1, 2, 3, 5, 8, 64, 1000] {
            let got = par_map_workers(items.clone(), workers, |x| x * x - 3);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn skewed_item_costs_complete() {
        // A few items are far more expensive than the rest; the chunked
        // queue must still return every result in order.
        let out = par_map_workers((0..64u64).collect::<Vec<u64>>(), 4, |i| {
            let spins = if i % 16 == 0 { 200_000 } else { 10 };
            let mut acc = i;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, idx as u64);
        }
    }

    #[test]
    #[should_panic(expected = "boom at 7")]
    fn worker_panic_payload_propagates() {
        // The caller must see the worker's own message, not a generic
        // "worker panicked" wrapper.
        par_map_workers((0..64).collect::<Vec<i32>>(), 4, |x| {
            if x == 7 {
                panic!("boom at {x}");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "boom inline")]
    fn inline_panic_propagates_too() {
        par_map_workers(vec![1], 1, |_| -> i32 { panic!("boom inline") });
    }
}
