//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace is seeded explicitly so that
//! any experiment can be replayed exactly. The generator is `xoshiro256**`
//! (Blackman & Vigna), seeded through SplitMix64 as its authors recommend.
//! Parallel work (parallel sweeps, per-tree bootstraps) never shares a
//! generator: [`seed_stream`] derives independent child seeds instead.

/// SplitMix64 step — used both to expand seeds and to derive child seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the `index`-th independent child seed from a parent seed.
///
/// Used to hand each parallel task (a rayon job, a forest tree, a simulated
/// server) its own generator without any cross-task coupling.
#[inline]
pub fn seed_stream(parent: u64, index: u64) -> u64 {
    // Mix the index in with a distinct odd constant before running SplitMix
    // so that (parent, 0) and (parent+1, 0) do not collide with (parent, 1).
    let mut s = parent ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// `xoshiro256**` pseudo-random generator.
///
/// Small (32 bytes of state), fast, and with a 2^256-1 period — far more than
/// any sweep here needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derive an independent child generator (see [`seed_stream`]).
    pub fn split(&mut self, index: u64) -> SimRng {
        SimRng::new(seed_stream(self.next_u64_raw(), index))
    }

    /// The raw xoshiro256** state words — read-only, for checkpoint records
    /// that fingerprint "where in its stream" a generator is. Two generators
    /// with equal state produce identical futures.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    #[inline]
    fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64 bounds inverted");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the ranges used here (n << 2^64) and determinism is what matters.
        ((self.next_u64_raw() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Uniform `u32` (upper bits of the next raw output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn seed_stream_distinct_per_index() {
        let seeds: Vec<u64> = (0..100).map(|i| seed_stream(123, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::new(13);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_larger_than_n() {
        let mut rng = SimRng::new(17);
        let sample = rng.sample_indices(5, 50);
        assert_eq!(sample.len(), 5);
    }

    #[test]
    fn state_fingerprints_stream_position() {
        let mut a = SimRng::new(42);
        let b = SimRng::new(42);
        assert_eq!(a.state(), b.state());
        a.next_u64();
        assert_ne!(a.state(), b.state(), "state advances with the stream");
        // Reading state never perturbs the stream.
        let mut c = SimRng::new(42);
        let _ = c.state();
        let mut d = SimRng::new(42);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SimRng::new(21);
        let mut b = SimRng::new(21);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
