//! Persistent shard workers for the threaded sharded event queue.
//!
//! A [`ShardPool`] owns the per-shard event heaps of a
//! [`crate::ShardedEventQueue`] running in threaded mode: `threads` worker
//! threads are spawned once per pool (not per epoch) and each worker owns
//! the heaps of the shards assigned to it (`shard % threads`). The
//! coordinator — the thread driving the simulation — never touches a heap
//! directly; it talks to the workers through exactly three channels, all of
//! them deterministic in content:
//!
//! * **mailboxes** (coordinator → worker): batches of `(at, seq, event)`
//!   items routed to a shard. The global sequence number was already
//!   assigned by the coordinator at schedule time, so a mailbox batch is an
//!   unordered bag of fully-keyed items; workers fold them into their heaps
//!   whenever convenient (opportunistically while the coordinator
//!   dispatches, and always at the next rendezvous).
//! * **drain streams** (worker → coordinator): at each epoch the workers
//!   pop, in parallel, every owned event strictly below the epoch bound
//!   and hand the coordinator one sorted `(at, seq)` run per shard.
//! * **head slots** (worker → coordinator): after a rendezvous each worker
//!   publishes the `(at, seq)` minimum of each owned heap. The drain
//!   command publishes heads too (post-drain), so one command per epoch
//!   gives the coordinator both the staged run and the residual minimum —
//!   the fused round that lets epochs cost a single rendezvous.
//!
//! Determinism does not depend on thread timing anywhere in this protocol:
//! heap contents are fully determined by the posted items, the drained runs
//! are sorted by the totally-ordered `(at, seq)` key, and rendezvous points
//! make every hand-off happen-before its consumption. Thread interleaving
//! can only change *when* a heap absorbs its mailbox, never *what* the next
//! rendezvous observes — the property the jitter test in
//! [`crate::events`] exercises.
//!
//! Workers spin briefly between commands and park once the spin budget is
//! spent, so an idle pool — or a pool on a single-core host — costs
//! scheduler wakeups rather than busy CPU. The pool meters its own
//! rendezvous cost ([`SyncProfile`]): wall-clock counters only, kept
//! strictly outside [`crate::BarrierStats`], which must stay bit-identical
//! across thread counts.

use crate::arena::EventHeap;
use crate::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One fully-keyed queue item: `(timestamp, global sequence, payload)`.
pub type Keyed<E> = (SimTime, u64, E);

/// Head sentinel for an empty shard heap: compares greater than every real
/// `(at, seq)` key (mirrors the queue's own empty-head sentinel).
pub const EMPTY_HEAD: (SimTime, u64) = (SimTime(u64::MAX), u64::MAX);

/// Wall-clock cost of the coordinator↔worker rendezvous protocol: how many
/// command rounds ran and how long the coordinator waited for acks. This is
/// *measurement*, not simulation state — it differs run to run and across
/// thread counts, which is why it lives outside [`crate::BarrierStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncProfile {
    /// Command/ack rounds completed (drains + absorbs).
    pub rendezvous: u64,
    /// Coordinator nanoseconds spent inside command rounds, from posting
    /// the command to the last worker ack.
    pub wait_ns: u64,
}

impl SyncProfile {
    /// Share of `wall_s` seconds the coordinator spent waiting at
    /// rendezvous — the barrier-wait share of a timed run.
    pub fn wait_share(&self, wall_s: f64) -> f64 {
        if wall_s <= 0.0 {
            return 0.0;
        }
        (self.wait_ns as f64 / 1e9) / wall_s
    }
}

/// Command encoding in the shared `cmd_arg` cell. Epoch bounds are real
/// microsecond timestamps and never reach the top two values.
const ARG_ABSORB: u64 = u64::MAX;
const ARG_SHUTDOWN: u64 = u64::MAX - 1;

/// Per-shard shared state. The `Mutex`es are uncontended by protocol: the
/// coordinator only reads `drained`/`head` after the owning worker acked
/// the command that filled them, and workers only take `mailbox` batches
/// the coordinator already finished pushing.
struct Slot<E> {
    mailbox: Mutex<Vec<Keyed<E>>>,
    drained: Mutex<Vec<Keyed<E>>>,
    head: Mutex<(SimTime, u64)>,
}

struct Shared<E> {
    slots: Vec<Slot<E>>,
    /// Monotone command counter; bumped (release) after `cmd_arg` is set.
    cmd_id: AtomicU64,
    /// Argument of the current command: an epoch bound, or a sentinel.
    cmd_arg: AtomicU64,
    /// Per-worker id of the last completed command.
    acks: Vec<AtomicU64>,
    /// Test aid: non-zero seeds a per-worker xorshift that sleeps workers
    /// 0–50 µs before each ack, simulating hostile thread scheduling.
    jitter: AtomicU64,
    /// Rendezvous rounds completed (coordinator-side count).
    sync_rendezvous: AtomicU64,
    /// Coordinator wall nanoseconds spent waiting inside command rounds.
    sync_wait_ns: AtomicU64,
}

/// The persistent worker pool. Dropping it shuts the workers down and joins
/// them; any events still owned by workers are dropped with their heaps.
pub struct ShardPool<E> {
    shared: Arc<Shared<E>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl<E> ShardPool<E> {
    /// Spawn `threads` workers jointly owning `shards` empty heaps.
    /// `threads` is clamped to `[1, shards]`.
    pub fn start(shards: usize, threads: usize) -> Self
    where
        E: Send + 'static,
    {
        assert!(shards >= 1, "need at least one shard");
        let threads = threads.clamp(1, shards);
        let shared = Arc::new(Shared {
            slots: (0..shards)
                .map(|_| Slot {
                    mailbox: Mutex::new(Vec::new()),
                    drained: Mutex::new(Vec::new()),
                    head: Mutex::new(EMPTY_HEAD),
                })
                .collect(),
            cmd_id: AtomicU64::new(0),
            cmd_arg: AtomicU64::new(ARG_ABSORB),
            acks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            jitter: AtomicU64::new(0),
            sync_rendezvous: AtomicU64::new(0),
            sync_wait_ns: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("shard-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w, threads))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Worker threads actually running.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enable scheduling-jitter injection (test aid): each worker sleeps a
    /// seed-derived pseudo-random 0–50 µs before acknowledging a command.
    pub fn set_jitter(&self, seed: u64) {
        self.shared.jitter.store(seed, Ordering::Relaxed);
    }

    /// Wall-clock rendezvous counters accumulated so far.
    pub fn sync_profile(&self) -> SyncProfile {
        SyncProfile {
            rendezvous: self.shared.sync_rendezvous.load(Ordering::Relaxed),
            wait_ns: self.shared.sync_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Append items to a shard's mailbox, draining `items`. The batch
    /// becomes part of the shard heap at the latest by the end of the next
    /// rendezvous; workers may fold it in earlier, which is unobservable.
    pub fn post(&self, shard: usize, items: &mut Vec<Keyed<E>>) {
        if items.is_empty() {
            return;
        }
        let mut mb = lock(&self.shared.slots[shard].mailbox);
        mb.append(items);
    }

    /// Rendezvous: every worker folds its pending mailboxes into its heaps
    /// and republishes per-shard heads. Returns the heads in shard order
    /// ([`EMPTY_HEAD`] for an empty heap).
    pub fn absorb_heads(&self, heads_out: &mut [(SimTime, u64)]) {
        self.command(ARG_ABSORB);
        for (s, slot) in self.shared.slots.iter().enumerate() {
            heads_out[s] = *lock(&slot.head);
        }
    }

    /// The fused epoch rendezvous: every worker pops, per owned shard, all
    /// events with `at < end_excl` into that shard's drain stream (sorted
    /// by `(at, seq)` — heap pop order), then publishes the *post-drain*
    /// heap head. One command/ack round hands the coordinator both the
    /// staged runs (swapped into `streams_out`) and the exact residual
    /// minima (`heads_out`). Mailboxes are absorbed first, so a
    /// posted-but-unabsorbed item can never be skipped by its own epoch.
    pub fn drain_epoch(
        &self,
        end_excl: SimTime,
        streams_out: &mut [Vec<Keyed<E>>],
        heads_out: &mut [(SimTime, u64)],
    ) {
        assert!(
            end_excl.0 < ARG_SHUTDOWN,
            "epoch bound collides with command sentinels"
        );
        self.command(end_excl.0);
        for (s, slot) in self.shared.slots.iter().enumerate() {
            streams_out[s].clear();
            std::mem::swap(&mut *lock(&slot.drained), &mut streams_out[s]);
            heads_out[s] = *lock(&slot.head);
        }
    }

    /// Post a command and wait for every worker to acknowledge it.
    fn command(&self, arg: u64) {
        let t0 = std::time::Instant::now();
        self.shared.cmd_arg.store(arg, Ordering::Relaxed);
        let id = self.shared.cmd_id.fetch_add(1, Ordering::Release) + 1;
        for w in &self.workers {
            w.thread().unpark();
        }
        for ack in &self.shared.acks {
            let mut spins = 0u32;
            while ack.load(Ordering::Acquire) < id {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Single-core hosts need the workers scheduled to make
                    // progress; yielding is the only way to hand them the
                    // core promptly.
                    std::thread::yield_now();
                }
            }
        }
        self.shared.sync_rendezvous.fetch_add(1, Ordering::Relaxed);
        self.shared
            .sync_wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

impl<E> Drop for ShardPool<E> {
    fn drop(&mut self) {
        self.shared.cmd_arg.store(ARG_SHUTDOWN, Ordering::Relaxed);
        self.shared.cmd_id.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A mutex whose critical sections cannot panic is still poisonable by a
/// panicking *sibling* worker; keep draining so the original panic, not a
/// poison error, surfaces at join.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop<E: Send>(shared: &Shared<E>, worker: usize, threads: usize) {
    let my_shards: Vec<usize> = (0..shared.slots.len())
        .filter(|s| s % threads == worker)
        .collect();
    let mut heaps: Vec<EventHeap<E>> = my_shards.iter().map(|_| EventHeap::new()).collect();
    let mut seen = 0u64;
    let mut jitter_state = 0u64;
    loop {
        // Wait for the next command; while waiting, opportunistically fold
        // mailbox batches the coordinator flushes mid-dispatch, overlapping
        // heap pushes with event dispatch on the coordinator thread.
        let mut spins = 0u32;
        let id = loop {
            let id = shared.cmd_id.load(Ordering::Acquire);
            if id > seen {
                break id;
            }
            let mut absorbed = false;
            for (i, &s) in my_shards.iter().enumerate() {
                if let Ok(mut mb) = shared.slots[s].mailbox.try_lock() {
                    if !mb.is_empty() {
                        for (at, seq, event) in mb.drain(..) {
                            heaps[i].push(at, seq, event);
                        }
                        absorbed = true;
                    }
                }
            }
            if absorbed {
                spins = 0;
                continue;
            }
            spins += 1;
            if spins < 256 {
                std::hint::spin_loop();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(200));
            }
        };
        seen = id;
        let arg = shared.cmd_arg.load(Ordering::Relaxed);
        if arg == ARG_SHUTDOWN {
            return;
        }
        // Both commands start by absorbing, so no posted item can miss the
        // rendezvous it was flushed for.
        for (i, &s) in my_shards.iter().enumerate() {
            let mut mb = lock(&shared.slots[s].mailbox);
            for (at, seq, event) in mb.drain(..) {
                heaps[i].push(at, seq, event);
            }
        }
        if arg != ARG_ABSORB {
            let end_excl = SimTime(arg);
            for (i, &s) in my_shards.iter().enumerate() {
                let mut out = lock(&shared.slots[s].drained);
                debug_assert!(out.is_empty(), "coordinator took the last stream");
                while heaps[i].peek_key().is_some_and(|(at, _)| at < end_excl) {
                    out.push(heaps[i].pop().expect("peeked entry"));
                }
            }
        }
        // Every command ends by publishing exact heads: the absorb command
        // exists for them, and the drain command fuses them in so an epoch
        // needs no second round.
        for (i, &s) in my_shards.iter().enumerate() {
            *lock(&shared.slots[s].head) = heaps[i].peek_key().unwrap_or(EMPTY_HEAD);
        }
        let jitter = shared.jitter.load(Ordering::Relaxed);
        if jitter != 0 {
            // Deterministically seeded, scheduling-hostile: stall before
            // acking so rendezvous arrival order varies run to run.
            if jitter_state == 0 {
                jitter_state = jitter ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            jitter_state ^= jitter_state << 13;
            jitter_state ^= jitter_state >> 7;
            jitter_state ^= jitter_state << 17;
            std::thread::sleep(std::time::Duration::from_micros(jitter_state % 50));
        }
        shared.acks[worker].store(seen, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(shards: usize, threads: usize, items: &[(usize, u64, u64)]) -> ShardPool<u64> {
        let pool = ShardPool::start(shards, threads);
        for &(shard, at, payload) in items {
            pool.post(shard, &mut vec![(SimTime(at), payload, payload)]);
        }
        pool
    }

    #[test]
    fn absorb_publishes_min_heads() {
        let pool = pool_with(3, 2, &[(0, 30, 1), (0, 10, 2), (2, 5, 3)]);
        let mut heads = vec![EMPTY_HEAD; 3];
        pool.absorb_heads(&mut heads);
        assert_eq!(heads[0], (SimTime(10), 2));
        assert_eq!(heads[1], EMPTY_HEAD);
        assert_eq!(heads[2], (SimTime(5), 3));
    }

    #[test]
    fn drain_returns_sorted_runs_and_publishes_residual_heads() {
        let pool = pool_with(
            2,
            2,
            &[(0, 50, 1), (0, 10, 2), (0, 90, 3), (1, 10, 4), (1, 200, 5)],
        );
        let mut streams = vec![Vec::new(), Vec::new()];
        let mut heads = vec![EMPTY_HEAD; 2];
        pool.drain_epoch(SimTime(60), &mut streams, &mut heads);
        assert_eq!(streams[0], vec![(SimTime(10), 2, 2), (SimTime(50), 1, 1)]);
        assert_eq!(streams[1], vec![(SimTime(10), 4, 4)]);
        // The beyond-epoch events survive, and the fused head publication
        // reports them without a second rendezvous.
        assert_eq!(heads[0], (SimTime(90), 3));
        assert_eq!(heads[1], (SimTime(200), 5));
        assert_eq!(pool.sync_profile().rendezvous, 1);
    }

    #[test]
    fn posted_items_cannot_miss_their_own_epoch() {
        // Post, then immediately drain an epoch covering the posts: the
        // drain rendezvous must absorb mailboxes first.
        let pool = ShardPool::start(4, 4);
        for s in 0..4 {
            pool.post(s, &mut vec![(SimTime(7), s as u64, s as u64)]);
        }
        let mut streams = vec![Vec::new(); 4];
        let mut heads = vec![EMPTY_HEAD; 4];
        pool.drain_epoch(SimTime(8), &mut streams, &mut heads);
        for (s, st) in streams.iter().enumerate() {
            assert_eq!(st.len(), 1, "shard {s} lost its posted item");
            assert_eq!(heads[s], EMPTY_HEAD, "shard {s} drained clean");
        }
    }

    #[test]
    fn threads_clamped_to_shards() {
        let pool: ShardPool<u64> = ShardPool::start(2, 16);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn many_epochs_under_jitter_deliver_everything_in_order() {
        let pool = ShardPool::start(4, 2);
        pool.set_jitter(0xDEAD);
        let mut expected = Vec::new();
        for seq in 0..400u64 {
            let at = (seq * 7919) % 1000;
            pool.post((seq % 4) as usize, &mut vec![(SimTime(at), seq, seq)]);
            expected.push((SimTime(at), seq));
        }
        let mut got = Vec::new();
        let mut streams = vec![Vec::new(); 4];
        let mut heads = vec![EMPTY_HEAD; 4];
        for window in [250u64, 500, 750, 1001] {
            pool.drain_epoch(SimTime(window), &mut streams, &mut heads);
            let mut merged: Vec<(SimTime, u64)> = streams
                .iter_mut()
                .flat_map(|s| s.drain(..))
                .map(|(at, seq, _)| (at, seq))
                .collect();
            merged.sort_unstable();
            got.extend(merged);
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
        let sync = pool.sync_profile();
        assert_eq!(sync.rendezvous, 4);
    }
}
