//! Summary statistics used by the metric collector and the experiment
//! harness: online moments (Welford), percentiles, CDFs, coefficient of
//! variation, and simple rank utilities shared with the correlation module.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable and O(1) per observation — used by the 1 Hz metric
/// collector where keeping full sample vectors per instance would be wasteful.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev / mean), 0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample by linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]`. Returns NaN for an empty slice. The input does not
/// need to be sorted; a sorted copy is made internally.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample (ascending).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One-shot summary of a sample: mean, std-dev, CoV, p50/p95/p99, min/max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation.
    pub cov: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample. Returns an all-NaN summary for empty input.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                cov: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Summary input"));
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        Summary {
            count: samples.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            cov: acc.cov(),
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Empirical CDF over a sample, evaluable at arbitrary points and exportable
/// as `(value, fraction)` pairs for the scheduling-result figures (Fig. 11).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample (NaNs are rejected by panic — they indicate a bug
    /// upstream, not valid data).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Self { sorted: samples }
    }

    /// Fraction of observations `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Percentile (`p` in `[0, 100]`) over the held sample.
    ///
    /// Unlike the free [`percentile`] function this does not clone or
    /// re-sort: the `Cdf` paid for one sort at construction, so repeated
    /// quantile queries (report aggregation asking for p50/p95/p99 of the
    /// same sample set) are O(1) each.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// Evenly spaced `(value, cumulative fraction)` points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean of the underlying sample.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            f64::NAN
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }
}

/// Fixed-capacity uniform reservoir sample (Vitter's Algorithm R).
///
/// Long scheduling runs produce millions of latency observations; a
/// reservoir keeps an unbiased fixed-size sample for percentile estimation
/// without unbounded memory.
#[derive(Debug, Clone)]
pub struct Reservoir {
    items: Vec<f64>,
    cap: usize,
    seen: u64,
}

impl Reservoir {
    /// Empty reservoir holding at most `cap` observations.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(cap),
            cap,
            seen: 0,
        }
    }

    /// Offer one observation.
    pub fn push(&mut self, x: f64, rng: &mut crate::rng::SimRng) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(x);
        } else {
            // Replace a random slot with probability cap/seen.
            let j = (rng.f64() * self.seen as f64) as u64;
            if (j as usize) < self.cap {
                self.items[j as usize] = x;
            }
        }
    }

    /// Observations currently held.
    pub fn items(&self) -> &[f64] {
        &self.items
    }

    /// Total observations offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Percentile estimate over the held sample.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.items, p)
    }
}

/// Average ranks of a sample (1-based, ties get the mean rank).
///
/// Shared helper for Spearman correlation; exposed here so the metrics crate
/// and tests can reuse it.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in ranks input")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average 1-based rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cov() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn p99_larger_than_p50_on_skewed_data() {
        let v: Vec<f64> = (0..1000)
            .map(|i| if i < 980 { 1.0 } else { 100.0 })
            .collect();
        let s = Summary::of(&v);
        assert_eq!(s.p50, 1.0);
        assert!(s.p99 > 50.0);
        assert!(s.cov > 1.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.at(0.0), 0.0);
        assert_eq!(c.at(5.0), 1.0);
        assert!((c.at(2.0) - 0.6).abs() < 1e-12);
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let c = Cdf::new((0..101).map(|i| i as f64).collect());
        assert!((c.quantile(0.5) - 50.0).abs() < 1e-9);
        assert!((c.quantile(0.99) - 99.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_percentile_matches_free_function() {
        let v: Vec<f64> = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        let c = Cdf::new(v.clone());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(c.percentile(p), percentile(&v, p));
        }
    }

    #[test]
    fn reservoir_fills_then_caps() {
        let mut rng = crate::rng::SimRng::new(1);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.push(i as f64, &mut rng);
        }
        assert_eq!(r.len(), 5);
        for i in 5..1000 {
            r.push(i as f64, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Push 0..10_000; the held sample's mean should approximate the
        // stream's mean (~5000).
        let mut rng = crate::rng::SimRng::new(2);
        let mut r = Reservoir::new(500);
        for i in 0..10_000 {
            r.push(i as f64, &mut rng);
        }
        let mean = r.items().iter().sum::<f64>() / r.len() as f64;
        assert!((mean - 5000.0).abs() < 400.0, "mean {mean}");
        // Percentile estimate tracks the stream.
        let p50 = r.percentile(50.0);
        assert!((p50 - 5000.0).abs() < 700.0, "p50 {p50}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_cap() {
        Reservoir::new(0);
    }

    #[test]
    fn ranks_simple() {
        assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_ties_averaged() {
        assert_eq!(ranks(&[1.0, 2.0, 2.0, 3.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
