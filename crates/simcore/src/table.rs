//! Minimal plain-text table rendering for the experiment harness.
//!
//! Every regenerated paper table/figure series is printed as an aligned text
//! table (and optionally CSV) so `cargo run -p bench --bin repro` output can
//! be diffed against EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the width accounting.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — experiment output never contains commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimal places (helper for table cells).
pub fn fnum(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.digits$}")
    }
}

/// Format a fraction as a percentage with two decimals.
pub fn fpct(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" and "1" start at the same offset.
        let off_header = lines[0].find("value").unwrap();
        let off_row = lines[2].find('1').unwrap();
        assert_eq!(off_header, off_row);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn fnum_and_fpct() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::NAN, 2), "-");
        assert_eq!(fpct(0.1879), "18.79%");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
