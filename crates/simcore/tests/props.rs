// Property-based suites need the crates.io `proptest` crate, which this
// offline workspace cannot fetch; the whole file is compiled only when the
// crate's `proptest` feature is enabled (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use simcore::stats::{percentile, Cdf, OnlineStats};
use simcore::{EventQueue, SimRng, SimTime};

proptest! {
    #[test]
    fn percentile_bounded_by_extremes(
        mut v in prop::collection::vec(-1e6f64..1e6, 1..200),
        p in 0.0f64..100.0,
    ) {
        let q = percentile(&v, p);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(q >= v[0] - 1e-9);
        prop_assert!(q <= v[v.len() - 1] + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(
        v in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&v, lo) <= percentile(&v, hi) + 1e-9);
    }

    #[test]
    fn online_stats_merge_equals_sequential(
        a in prop::collection::vec(-1e3f64..1e3, 0..100),
        b in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = OnlineStats::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone_and_normalised(
        v in prop::collection::vec(-1e6f64..1e6, 1..200),
        probes in prop::collection::vec(-1e6f64..1e6, 2..20),
    ) {
        let cdf = Cdf::new(v);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted {
            let f = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    #[test]
    fn rng_index_always_in_range(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.index(n) < n);
        }
    }

    #[test]
    fn rng_sample_indices_distinct(seed in any::<u64>(), n in 1usize..500, k in 0usize..500) {
        let mut rng = SimRng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), s.len());
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut prev = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= prev);
            prev = at;
        }
    }

    #[test]
    fn simtime_roundtrip(us in 0u64..u64::MAX / 2) {
        let t = SimTime::from_micros(us);
        prop_assert_eq!(t.as_micros(), us);
        prop_assert!((t.as_secs() - us as f64 / 1e6).abs() < 1e-9 * (1.0 + us as f64 / 1e6));
    }
}
