//! Synthetic Azure-Functions-like invocation dynamics.
//!
//! The paper replays invocation rates from the Azure Functions 2019
//! production trace ("invocations per hour illustrate diurnal and weekly
//! patterns", §6.1) and cites its characterization repeatedly: 50 % of
//! invocations run < 1 s, 96 % of functions average < 60 s, 90 % of
//! functions never request more than 400 MB. The trace itself is not
//! redistributable here, so this module generates rates and duration/memory
//! samples matching those published statistics (the DESIGN.md substitution).

use simcore::dist::{lognormal, poisson};
use simcore::{SimRng, SimTime};

/// Seconds per simulated day.
const DAY_SECS: f64 = 86_400.0;

/// A diurnal + weekly invocation-rate profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RateProfile {
    /// Mean request rate (requests/second) averaged over a full week.
    pub base_rps: f64,
    /// Diurnal swing in `[0, 1)`: rate peaks at `base·(1+a)` mid-afternoon
    /// and bottoms at `base·(1−a)` pre-dawn.
    pub diurnal_amplitude: f64,
    /// Weekend rate multiplier (< 1 for business workloads).
    pub weekend_factor: f64,
    /// Relative rate jitter applied per sampling interval.
    pub jitter: f64,
}

impl RateProfile {
    /// A profile shaped like the Azure trace's published pattern.
    pub fn azure_like(base_rps: f64) -> Self {
        Self {
            base_rps,
            diurnal_amplitude: 0.6,
            weekend_factor: 0.55,
            jitter: 0.08,
        }
    }

    /// Flat profile (used by controlled experiments that fix QPS).
    pub fn constant(rps: f64) -> Self {
        Self {
            base_rps: rps,
            diurnal_amplitude: 0.0,
            weekend_factor: 1.0,
            jitter: 0.0,
        }
    }

    /// Deterministic mean rate at time `t` (no jitter).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let secs = t.as_secs();
        let day_frac = (secs % DAY_SECS) / DAY_SECS;
        // Peak at 15:00, trough at 03:00.
        let diurnal =
            1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * (day_frac - 0.625)).cos();
        let day_index = (secs / DAY_SECS).floor() as u64 % 7;
        let weekly = if day_index >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        (self.base_rps * diurnal * weekly).max(0.0)
    }

    /// Sample the number of invocations in `[t, t + dt)` — Poisson around
    /// the jittered mean rate.
    pub fn invocations_in(&self, t: SimTime, dt: SimTime, rng: &mut SimRng) -> u64 {
        let mean = self.rate_at(t) * dt.as_secs();
        let jittered = mean * (1.0 + self.jitter * (2.0 * rng.f64() - 1.0));
        poisson(rng, jittered.max(0.0))
    }
}

/// Samplers for the published per-function statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzureFunctionStats;

impl AzureFunctionStats {
    /// Sample an execution duration.
    ///
    /// Log-normal fitted to the characterization: median 1 s (50 % of
    /// invocations < 1 s) and P96 ≈ 60 s ⇒ `mu = 0`, `sigma = ln(60)/1.75`.
    pub fn sample_duration(rng: &mut SimRng) -> SimTime {
        let sigma = 60.0f64.ln() / 1.75;
        let secs = lognormal(rng, 0.0, sigma);
        // Azure caps executions; AWS Lambda's cap (also cited) is 900 s.
        SimTime::from_secs(secs.min(900.0))
    }

    /// Sample a memory allocation in GB.
    ///
    /// Log-normal fitted to: 50 % of apps allocated ≤ 170 MB, 90 % never
    /// above 400 MB ⇒ median 0.17 GB, P90 = 0.4 GB ⇒
    /// `sigma = ln(0.4/0.17)/1.2816`.
    pub fn sample_memory_gb(rng: &mut SimRng) -> f64 {
        let mu = 0.17f64.ln();
        let sigma = (0.4f64 / 0.17).ln() / 1.2816;
        lognormal(rng, mu, sigma).min(3.0) // AWS Lambda's 3 GB cap (§1).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peak_higher_than_trough() {
        let p = RateProfile::azure_like(100.0);
        let peak = p.rate_at(SimTime::from_secs(15.0 * 3600.0));
        let trough = p.rate_at(SimTime::from_secs(3.0 * 3600.0));
        assert!(peak > 2.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn weekend_rate_reduced() {
        let p = RateProfile::azure_like(100.0);
        let mon = p.rate_at(SimTime::from_secs(12.0 * 3600.0));
        let sat = p.rate_at(SimTime::from_secs(5.0 * DAY_SECS + 12.0 * 3600.0));
        assert!((sat / mon - p.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = RateProfile::constant(42.0);
        for h in 0..48 {
            assert_eq!(p.rate_at(SimTime::from_secs(h as f64 * 3600.0)), 42.0);
        }
    }

    #[test]
    fn invocation_counts_track_rate() {
        let p = RateProfile::constant(50.0);
        let mut rng = SimRng::new(1);
        let n = 2000;
        let total: u64 = (0..n)
            .map(|_| p.invocations_in(SimTime::ZERO, SimTime::from_secs(1.0), &mut rng))
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn duration_distribution_matches_characterization() {
        let mut rng = SimRng::new(7);
        let n = 50_000;
        let mut under_1s = 0;
        let mut under_60s = 0;
        for _ in 0..n {
            let d = AzureFunctionStats::sample_duration(&mut rng).as_secs();
            if d < 1.0 {
                under_1s += 1;
            }
            if d < 60.0 {
                under_60s += 1;
            }
        }
        let p50 = under_1s as f64 / n as f64;
        let p96 = under_60s as f64 / n as f64;
        assert!((p50 - 0.5).abs() < 0.02, "P(d<1s) = {p50}");
        assert!((p96 - 0.96).abs() < 0.01, "P(d<60s) = {p96}");
    }

    #[test]
    fn memory_distribution_matches_characterization() {
        let mut rng = SimRng::new(9);
        let n = 50_000;
        let mut under_400mb = 0;
        for _ in 0..n {
            if AzureFunctionStats::sample_memory_gb(&mut rng) <= 0.4 {
                under_400mb += 1;
            }
        }
        let p90 = under_400mb as f64 / n as f64;
        assert!((p90 - 0.9).abs() < 0.02, "P(mem<400MB) = {p90}");
    }

    #[test]
    fn durations_capped_at_900s() {
        let mut rng = SimRng::new(11);
        for _ in 0..100_000 {
            assert!(AzureFunctionStats::sample_duration(&mut rng).as_secs() <= 900.0);
        }
    }
}
