//! The paper's three-way workload taxonomy (Table 1).

/// Workload class, determining which QoS metric applies and how the
/// prediction model's temporal-overlap code is formed (paper §3.3):
///
/// * **LS** — QoS is IPC / p99 tail latency; `D = 0`, `T = 0` (invoked
///   repeatedly, so QPS — not start delay — is the interference factor).
/// * **SC** — QoS is job completion time; `D` is the start delay relative to
///   the first-arriving job, `T` its solo-run lifetime.
/// * **BG** — lenient requirements; never a prediction target, but still a
///   source of interference (coded like SC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Scheduled-background: triggered or scheduled intermittently, no
    /// latency requirements (IoT data collection, monitoring).
    Background,
    /// Short-term computing: minute-level processing times; millisecond
    /// changes in completion time are trivial (big data, linear algebra).
    ShortTerm,
    /// Latency-sensitive: frequent invocations; millisecond latency
    /// increases degrade user experience (web search, e-commerce, social
    /// networks).
    LatencySensitive,
}

impl WorkloadClass {
    /// Table-1 abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            WorkloadClass::Background => "BG",
            WorkloadClass::ShortTerm => "SC",
            WorkloadClass::LatencySensitive => "LS",
        }
    }

    /// Table-1 description.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadClass::Background => {
                "triggered or scheduled intermittently; run from time to time without latency requirements"
            }
            WorkloadClass::ShortTerm => {
                "minute-level processing times; millisecond changes in completion times are trivial"
            }
            WorkloadClass::LatencySensitive => {
                "frequent invocations; millisecond latency increases degrade user experience"
            }
        }
    }

    /// Whether this class is ever a QoS *prediction target*. BG+BG
    /// colocations never call the predictor (paper §3.3).
    pub fn is_prediction_target(self) -> bool {
        !matches!(self, WorkloadClass::Background)
    }

    /// Whether the class uses the start-delay/lifetime temporal code
    /// (SC/BG) rather than the zeroed LS form.
    pub fn uses_temporal_code(self) -> bool {
        !matches!(self, WorkloadClass::LatencySensitive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs_match_table1() {
        assert_eq!(WorkloadClass::Background.abbrev(), "BG");
        assert_eq!(WorkloadClass::ShortTerm.abbrev(), "SC");
        assert_eq!(WorkloadClass::LatencySensitive.abbrev(), "LS");
    }

    #[test]
    fn bg_is_never_a_target() {
        assert!(!WorkloadClass::Background.is_prediction_target());
        assert!(WorkloadClass::ShortTerm.is_prediction_target());
        assert!(WorkloadClass::LatencySensitive.is_prediction_target());
    }

    #[test]
    fn ls_zeroes_temporal_code() {
        assert!(!WorkloadClass::LatencySensitive.uses_temporal_code());
        assert!(WorkloadClass::ShortTerm.uses_temporal_code());
        assert!(WorkloadClass::Background.uses_temporal_code());
    }
}
