//! Function call-path graphs (paper Fig. 2).
//!
//! A workload's request fans out over a DAG of functions connected by two
//! edge kinds the paper distinguishes when explaining hotspot propagation
//! (Observation 4, citing ServerlessBench's chain taxonomy):
//!
//! * [`CallKind::Async`] — a *sequence chain*: the child is invoked when the
//!   parent completes; the parent's resources are released first.
//! * [`CallKind::Nested`] — a *nested chain*: the child is invoked by the
//!   running parent, which blocks (holding its instance slot) until the
//!   child returns. Saturation in the child therefore propagates *upstream*.
//!
//! The module also provides solo-run schedule analysis (start/completion
//! times with zero contention) and critical-path extraction, which the
//! Figure 3(a) experiment uses to separate critical-path from
//! non-critical-path interference.

use crate::function::FunctionSpec;
use simcore::SimTime;

/// Index of a function node within its call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// How a parent invokes a child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Sequence chain: child starts after the parent *completes*.
    Async,
    /// Nested chain: child starts after the parent's own service finishes,
    /// and the parent's completion (and instance slot) waits for the child.
    Nested,
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    func: FunctionSpec,
    /// Outgoing edges.
    children: Vec<(NodeId, CallKind)>,
    /// Incoming edges (mirror of children).
    parents: Vec<(NodeId, CallKind)>,
}

/// Solo-run timing of one node (no contention, warm instances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoloTiming {
    /// When the node's own service starts.
    pub start: SimTime,
    /// When the node's own service ends.
    pub service_end: SimTime,
    /// When the node *completes* (service end, extended by nested children).
    pub completion: SimTime,
}

/// A validated-on-use DAG of function invocations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CallGraph {
    nodes: Vec<Node>,
}

impl CallGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-function graph (microbenchmarks).
    pub fn single(func: FunctionSpec) -> Self {
        let mut g = Self::new();
        g.add(func);
        g
    }

    /// Add a function node, returning its id.
    pub fn add(&mut self, func: FunctionSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            func,
            children: Vec::new(),
            parents: Vec::new(),
        });
        id
    }

    /// Add an invocation edge. Panics on out-of-range ids, self-loops, or
    /// edges that would create a cycle.
    pub fn link(&mut self, from: NodeId, to: NodeId, kind: CallKind) {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "bad node id"
        );
        assert_ne!(from, to, "self-loop");
        self.nodes[from.0].children.push((to, kind));
        self.nodes[to.0].parents.push((from, kind));
        assert!(
            self.topo_order().is_some(),
            "edge {from:?} -> {to:?} creates a cycle"
        );
    }

    /// Number of function nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The function at a node.
    pub fn func(&self, id: NodeId) -> &FunctionSpec {
        &self.nodes[id.0].func
    }

    /// Mutable access to the function at a node (used by experiment setup to
    /// perturb individual functions).
    pub fn func_mut(&mut self, id: NodeId) -> &mut FunctionSpec {
        &mut self.nodes[id.0].func
    }

    /// Find a node by function name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.func.name == name)
            .map(NodeId)
    }

    /// Outgoing edges of a node.
    pub fn children(&self, id: NodeId) -> &[(NodeId, CallKind)] {
        &self.nodes[id.0].children
    }

    /// Incoming edges of a node.
    pub fn parents(&self, id: NodeId) -> &[(NodeId, CallKind)] {
        &self.nodes[id.0].parents
    }

    /// Nodes with no incoming edges (request entry points).
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parents.is_empty())
            .map(NodeId)
            .collect()
    }

    /// All node ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Kahn topological order; `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.parents.len()).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).map(NodeId).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &(v, _) in &self.nodes[u.0].children {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Solo-run schedule: start / service-end / completion per node with no
    /// contention and warm instances. The platform executor must reproduce
    /// these times exactly when run against an idle cluster.
    pub fn solo_schedule(&self) -> Vec<SoloTiming> {
        let n = self.nodes.len();
        let order = self.topo_order().expect("cycle in call graph");
        let mut start = vec![SimTime::ZERO; n];
        let mut service_end = vec![SimTime::ZERO; n];
        // Forward pass computes start & service_end. Async edges need the
        // parent's completion, which depends on the parent's nested subtree
        // — resolved lazily via a memoized recursion.
        fn completion(
            g: &CallGraph,
            u: usize,
            service_end: &[SimTime],
            memo: &mut [Option<SimTime>],
        ) -> SimTime {
            if let Some(c) = memo[u] {
                return c;
            }
            let mut c = service_end[u];
            for &(v, kind) in &g.nodes[u].children {
                if kind == CallKind::Nested {
                    c = c.max(completion(g, v.0, service_end, memo));
                }
            }
            memo[u] = Some(c);
            c
        }

        for &u in &order {
            let mut s = SimTime::ZERO;
            for &(p, kind) in &self.nodes[u.0].parents {
                let gate = match kind {
                    // Parent's own service must be done first in both cases;
                    // for Async the parent's *nested subtree* must also be
                    // done. Computing the nested subtree honestly here would
                    // require child times that are not final yet in the
                    // forward pass, so we gate Async on service_end plus the
                    // parent's nested-descendant chain, resolved after the
                    // pass below.
                    CallKind::Async => service_end[p.0],
                    CallKind::Nested => service_end[p.0],
                };
                s = s.max(gate);
            }
            start[u.0] = s;
            service_end[u.0] = s.plus(self.nodes[u.0].func.warm_duration());
        }

        // Iterate the forward pass until async gates that depend on nested
        // completions converge (a DAG needs at most `n` rounds; in practice
        // one extra round suffices).
        for _ in 0..n {
            let mut memo = vec![None; n];
            let mut changed = false;
            for &u in &order {
                let mut s = SimTime::ZERO;
                for &(p, kind) in &self.nodes[u.0].parents {
                    let gate = match kind {
                        CallKind::Async => completion(self, p.0, &service_end, &mut memo),
                        CallKind::Nested => service_end[p.0],
                    };
                    s = s.max(gate);
                }
                if s != start[u.0] {
                    changed = true;
                }
                start[u.0] = s;
                service_end[u.0] = s.plus(self.nodes[u.0].func.warm_duration());
            }
            if !changed {
                break;
            }
        }

        let mut memo = vec![None; n];
        (0..n)
            .map(|u| SoloTiming {
                start: start[u],
                service_end: service_end[u],
                completion: completion(self, u, &service_end, &mut memo),
            })
            .collect()
    }

    /// End-to-end solo latency: the latest completion across all nodes.
    pub fn critical_path_duration(&self) -> SimTime {
        self.solo_schedule()
            .iter()
            .map(|t| t.completion)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Nodes on the critical path: every node whose completion delay would
    /// delay the end-to-end latency (computed by slack analysis on the solo
    /// schedule: a node is critical when `start` equals the tightest gate
    /// chain from a root and its completion chain reaches the makespan).
    pub fn critical_path(&self) -> Vec<NodeId> {
        let timing = self.solo_schedule();
        let makespan = timing
            .iter()
            .map(|t| t.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        // Walk back from the node(s) achieving the makespan through the
        // gating structure: a parent is critical if it is the active gate of
        // a critical child.
        let mut critical = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = timing
            .iter()
            .enumerate()
            .filter(|(_, t)| t.completion == makespan)
            .map(|(i, _)| i)
            .collect();
        while let Some(u) = stack.pop() {
            if critical[u] {
                continue;
            }
            critical[u] = true;
            // A nested child that extends our completion is critical.
            for &(v, kind) in &self.nodes[u].children {
                if kind == CallKind::Nested
                    && timing[v.0].completion == timing[u].completion
                    && timing[v.0].completion > timing[u].service_end
                {
                    stack.push(v.0);
                }
            }
            // The parent whose gate determined our start is critical.
            for &(p, kind) in &self.nodes[u].parents {
                let gate = match kind {
                    CallKind::Async => timing[p.0].completion,
                    CallKind::Nested => timing[p.0].service_end,
                };
                if gate == timing[u].start {
                    stack.push(p.0);
                }
            }
        }
        (0..self.nodes.len())
            .filter(|&i| critical[i])
            .map(NodeId)
            .collect()
    }

    /// Whether a node lies on the critical path.
    pub fn is_critical(&self, id: NodeId) -> bool {
        self.critical_path().contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::PhaseSpec;
    use cluster::microarch::MicroarchBaseline;
    use cluster::{Boundedness, Demand, Sensitivity};

    fn func(name: &str, ms: f64) -> FunctionSpec {
        FunctionSpec::single_phase(
            name,
            PhaseSpec {
                duration: SimTime::from_millis(ms),
                demand: Demand::new(0.5, 1.0, 1.0, 0.0, 0.0, 0.25),
                bounded: Boundedness::cpu_bound(),
                sens: Sensitivity::new(1.0, 1.0, 0.5),
                micro: MicroarchBaseline::generic(),
            },
        )
    }

    #[test]
    fn chain_latency_sums() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 10.0));
        let b = g.add(func("b", 20.0));
        let c = g.add(func("c", 30.0));
        g.link(a, b, CallKind::Async);
        g.link(b, c, CallKind::Async);
        assert_eq!(g.critical_path_duration(), SimTime::from_millis(60.0));
        assert_eq!(g.roots(), vec![a]);
    }

    #[test]
    fn parallel_branches_take_max() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 10.0));
        let b = g.add(func("b", 50.0));
        let c = g.add(func("c", 20.0));
        let d = g.add(func("d", 10.0));
        g.link(a, b, CallKind::Async);
        g.link(a, c, CallKind::Async);
        g.link(b, d, CallKind::Async);
        g.link(c, d, CallKind::Async);
        // a(10) -> max(b 50, c 20) -> d(10) = 70.
        assert_eq!(g.critical_path_duration(), SimTime::from_millis(70.0));
        let cp = g.critical_path();
        assert!(cp.contains(&a) && cp.contains(&b) && cp.contains(&d));
        assert!(!cp.contains(&c), "short branch must not be critical");
    }

    #[test]
    fn nested_child_extends_parent_completion() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 10.0));
        let b = g.add(func("b", 40.0));
        g.link(a, b, CallKind::Nested);
        let t = g.solo_schedule();
        assert_eq!(t[b.0].start, SimTime::from_millis(10.0));
        assert_eq!(t[a.0].service_end, SimTime::from_millis(10.0));
        // a completes only when b returns.
        assert_eq!(t[a.0].completion, SimTime::from_millis(50.0));
        assert_eq!(g.critical_path_duration(), SimTime::from_millis(50.0));
    }

    #[test]
    fn async_after_nested_waits_for_subtree() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 10.0));
        let b = g.add(func("b", 40.0)); // nested under a
        let c = g.add(func("c", 5.0)); // async after a
        g.link(a, b, CallKind::Nested);
        g.link(a, c, CallKind::Async);
        let t = g.solo_schedule();
        // c cannot start until a *completes*, i.e. until b returns at 50ms.
        assert_eq!(t[c.0].start, SimTime::from_millis(50.0));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 1.0));
        let b = g.add(func("b", 1.0));
        g.link(a, b, CallKind::Async);
        g.link(b, a, CallKind::Async);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 1.0));
        g.link(a, a, CallKind::Async);
    }

    #[test]
    fn find_by_name() {
        let mut g = CallGraph::new();
        g.add(func("alpha", 1.0));
        let beta = g.add(func("beta", 1.0));
        assert_eq!(g.find("beta"), Some(beta));
        assert_eq!(g.find("gamma"), None);
    }

    #[test]
    fn single_graph_critical_path_is_itself() {
        let g = CallGraph::single(func("only", 42.0));
        assert_eq!(g.critical_path_duration(), SimTime::from_millis(42.0));
        assert_eq!(g.critical_path(), vec![NodeId(0)]);
        assert!(g.is_critical(NodeId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = CallGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.critical_path_duration(), SimTime::ZERO);
        assert!(g.roots().is_empty());
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = CallGraph::new();
        let a = g.add(func("a", 1.0));
        let b = g.add(func("b", 1.0));
        let c = g.add(func("c", 1.0));
        g.link(a, c, CallKind::Async);
        g.link(b, c, CallKind::Async);
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(c));
    }
}
