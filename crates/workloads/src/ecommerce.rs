//! A TPC-W-style *e-commerce* workload (paper §6.1 ports TPC-W to OpenFaaS;
//! §6.3 states its p99 SLA as 88 ms).
//!
//! Six functions model a browse-and-buy request: a storefront entry point
//! that synchronously queries the catalog, then asynchronous cart and order
//! stages, with a nested promotion lookup inside the product-detail stage.

use crate::class::WorkloadClass;
use crate::dag::{CallGraph, CallKind};
use crate::function::{FunctionSpec, PhaseSpec, Workload};
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, Sensitivity};
use simcore::SimTime;

/// The paper's stated p99 SLA for *e-commerce*: 88 ms (§6.3).
pub const SLA_P99_MS: f64 = 88.0;

/// Canonical function names.
pub const FUNCTION_NAMES: [&str; 6] = [
    "storefront",
    "search-catalog",
    "product-detail",
    "price-promotion",
    "cart-add",
    "order-confirm",
];

fn func(name: &str, ms: f64, demand: Demand, sens: Sensitivity, ipc: f64) -> FunctionSpec {
    let work = PhaseSpec {
        duration: SimTime::from_millis(ms),
        demand,
        bounded: Boundedness::new(0.9, 0.0, 0.1),
        sens,
        micro: MicroarchBaseline {
            ipc,
            ..MicroarchBaseline::generic()
        },
    };
    let cold = PhaseSpec {
        duration: SimTime::from_millis(300.0),
        demand: Demand::new(
            0.4,
            2.0,
            0.8,
            50.0,
            4.0,
            demand.get(cluster::Resource::Memory),
        ),
        bounded: Boundedness::new(0.4, 0.6, 0.0),
        sens: Sensitivity::new(0.3, 0.3, 0.2),
        micro: MicroarchBaseline {
            ipc: 0.9,
            ..MicroarchBaseline::generic()
        },
    };
    FunctionSpec {
        name: name.into(),
        cold_start: Some(cold),
        phases: vec![work],
        memory_gb: demand.get(cluster::Resource::Memory),
        concurrency: 2,
    }
}

/// Build the six-function browse-and-buy workload.
pub fn browse_and_buy() -> Workload {
    let mut g = CallGraph::new();
    let storefront = g.add(func(
        "storefront",
        4.0,
        Demand::new(0.133, 0.667, 0.167, 0.0, 3.0, 0.2),
        Sensitivity::new(0.3, 0.3, 0.3),
        2.0,
    ));
    let search = g.add(func(
        "search-catalog",
        14.0,
        Demand::new(0.333, 3.333, 1.0, 5.0, 4.0, 0.35),
        Sensitivity::new(1.4, 1.6, 0.5),
        1.1,
    ));
    let detail = g.add(func(
        "product-detail",
        9.0,
        Demand::new(0.2, 1.667, 0.5, 2.5, 3.0, 0.25),
        Sensitivity::new(0.8, 0.8, 0.4),
        1.4,
    ));
    let promo = g.add(func(
        "price-promotion",
        6.0,
        Demand::new(0.133, 1.0, 0.333, 0.0, 1.5, 0.15),
        Sensitivity::new(0.7, 0.6, 0.3),
        1.6,
    ));
    let cart = g.add(func(
        "cart-add",
        7.0,
        Demand::new(0.167, 1.333, 0.4, 4.0, 2.0, 0.2),
        Sensitivity::new(0.9, 0.8, 0.4),
        1.3,
    ));
    let order = g.add(func(
        "order-confirm",
        8.0,
        Demand::new(0.2, 1.667, 0.5, 7.5, 2.5, 0.25),
        Sensitivity::new(1.0, 0.9, 0.4),
        1.2,
    ));

    g.link(storefront, search, CallKind::Nested);
    g.link(search, detail, CallKind::Async);
    g.link(detail, promo, CallKind::Nested);
    g.link(detail, cart, CallKind::Async);
    g.link(cart, order, CallKind::Async);

    Workload::new("e-commerce", WorkloadClass::LatencySensitive, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_six_functions() {
        let w = browse_and_buy();
        assert_eq!(w.num_functions(), 6);
        for name in FUNCTION_NAMES {
            assert!(w.graph.find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn solo_latency_fits_sla() {
        let w = browse_and_buy();
        let solo_ms = w.critical_path_duration().as_millis();
        // storefront 4 + search 14 + detail 9 + max(promo chain, cart 7 +
        // order 8) = 4+14+9+15 = 42 ms solo, comfortably under the 88 ms SLA.
        assert!(solo_ms < SLA_P99_MS / 1.5, "solo {solo_ms} ms");
        assert!(solo_ms > 30.0);
    }

    #[test]
    fn is_latency_sensitive() {
        assert_eq!(browse_and_buy().class, WorkloadClass::LatencySensitive);
    }

    #[test]
    fn search_is_the_sensitive_hotspot() {
        let w = browse_and_buy();
        let id = w.graph.find("search-catalog").unwrap();
        let sens = w.graph.func(id).phases[0].sens;
        assert!(sens.llc > 1.0);
    }

    #[test]
    fn single_entry_point() {
        let w = browse_and_buy();
        assert_eq!(w.graph.roots().len(), 1);
        assert_eq!(w.graph.roots()[0], w.graph.find("storefront").unwrap());
    }
}
