//! Functions as sequences of phases.
//!
//! A serverless function's execution is modelled as an ordered list of
//! [`PhaseSpec`]s: the cold-start phase (optional, paper §5.2 treats startup
//! as "an ordinary phase of the function execution") followed by one or more
//! work phases. Phases are the granularity at which resource demand — and
//! therefore interference sensitivity — changes over time, which is what
//! makes partial interference *temporally varied* (Observation 3: the later
//! map phase and the shuffle phase of LogisticRegression are more sensitive
//! than the early phase).

use crate::class::WorkloadClass;
use crate::dag::CallGraph;
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, InstanceLoad, Sensitivity};
use simcore::SimTime;

/// One execution phase of a function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Solo-run duration of the phase.
    pub duration: SimTime,
    /// Resource demand while the phase runs alone.
    pub demand: Demand,
    /// Bottleneck decomposition.
    pub bounded: Boundedness,
    /// Memory-subsystem sensitivity.
    pub sens: Sensitivity,
    /// Solo microarchitecture counter baseline.
    pub micro: MicroarchBaseline,
}

impl PhaseSpec {
    /// Convert into the load this phase exerts on a server when the
    /// instance is pinned to `socket`.
    pub fn load(&self, socket: usize) -> InstanceLoad {
        InstanceLoad {
            demand: self.demand,
            bounded: self.bounded,
            sens: self.sens,
            socket,
        }
    }
}

/// A serverless function: an optional cold-start phase plus work phases.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Function name, unique within its workload.
    pub name: String,
    /// Cold-start phase (image pull, runtime boot, dependency load). Warm
    /// invocations skip it.
    pub cold_start: Option<PhaseSpec>,
    /// Work phases executed in order on every invocation.
    pub phases: Vec<PhaseSpec>,
    /// Memory allocated to each instance (GB) — the paper notes 90 % of
    /// Azure functions stay under 400 MB.
    pub memory_gb: f64,
    /// Maximum concurrent requests one instance serves before queueing.
    pub concurrency: u32,
}

impl FunctionSpec {
    /// Build a single-phase function (the common case for microbenchmarks).
    pub fn single_phase(name: impl Into<String>, phase: PhaseSpec) -> Self {
        Self {
            name: name.into(),
            cold_start: None,
            phases: vec![phase],
            memory_gb: phase.demand.get(cluster::Resource::Memory),
            concurrency: 1,
        }
    }

    /// Solo-run service time of a warm invocation.
    pub fn warm_duration(&self) -> SimTime {
        SimTime(self.phases.iter().map(|p| p.duration.0).sum())
    }

    /// Solo-run service time of a cold invocation.
    pub fn cold_duration(&self) -> SimTime {
        let cold = self.cold_start.map(|p| p.duration.0).unwrap_or(0);
        SimTime(cold + self.warm_duration().0)
    }

    /// Phases of one invocation, cold-start first when `cold` is set.
    pub fn invocation_phases(&self, cold: bool) -> Vec<PhaseSpec> {
        let mut out = Vec::with_capacity(self.phases.len() + 1);
        if cold {
            if let Some(cs) = self.cold_start {
                out.push(cs);
            }
        }
        out.extend_from_slice(&self.phases);
        out
    }

    /// Average demand weighted by phase duration — the "size" of the
    /// function as seen by placement heuristics.
    pub fn mean_demand(&self) -> Demand {
        let total: u64 = self.phases.iter().map(|p| p.duration.0).sum();
        if total == 0 {
            return Demand::zero();
        }
        self.phases
            .iter()
            .fold(Demand::zero(), |acc, p| {
                acc.add(&p.demand.scale(p.duration.0 as f64))
            })
            .scale(1.0 / total as f64)
    }
}

/// A complete workload: a named call graph of functions with a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (e.g. "social-network").
    pub name: String,
    /// Taxonomy class (drives QoS metric and temporal coding).
    pub class: WorkloadClass,
    /// Function call-path DAG. Microbenchmarks are single-node graphs.
    pub graph: CallGraph,
}

impl Workload {
    /// Construct, validating the graph.
    pub fn new(name: impl Into<String>, class: WorkloadClass, graph: CallGraph) -> Self {
        Self {
            name: name.into(),
            class,
            graph,
        }
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.graph.len()
    }

    /// Sum of warm solo durations along the critical path — the workload's
    /// ideal end-to-end latency.
    pub fn critical_path_duration(&self) -> SimTime {
        self.graph.critical_path_duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::microarch::MicroarchBaseline;

    fn phase(ms: f64) -> PhaseSpec {
        PhaseSpec {
            duration: SimTime::from_millis(ms),
            demand: Demand::new(1.0, 2.0, 3.0, 0.0, 0.0, 0.25),
            bounded: Boundedness::cpu_bound(),
            sens: Sensitivity::new(1.0, 1.0, 0.5),
            micro: MicroarchBaseline::generic(),
        }
    }

    #[test]
    fn warm_and_cold_durations() {
        let mut f = FunctionSpec::single_phase("f", phase(100.0));
        assert_eq!(f.warm_duration(), SimTime::from_millis(100.0));
        assert_eq!(f.cold_duration(), SimTime::from_millis(100.0));
        f.cold_start = Some(phase(250.0));
        assert_eq!(f.cold_duration(), SimTime::from_millis(350.0));
        assert_eq!(f.warm_duration(), SimTime::from_millis(100.0));
    }

    #[test]
    fn invocation_phases_order() {
        let mut f = FunctionSpec::single_phase("f", phase(100.0));
        f.cold_start = Some(phase(50.0));
        assert_eq!(f.invocation_phases(false).len(), 1);
        let cold = f.invocation_phases(true);
        assert_eq!(cold.len(), 2);
        assert_eq!(cold[0].duration, SimTime::from_millis(50.0));
    }

    #[test]
    fn mean_demand_weighted_by_duration() {
        let mut p1 = phase(100.0);
        p1.demand = Demand::new(2.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let mut p2 = phase(300.0);
        p2.demand = Demand::new(6.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let f = FunctionSpec {
            name: "f".into(),
            cold_start: None,
            phases: vec![p1, p2],
            memory_gb: 0.25,
            concurrency: 1,
        };
        // (2*100 + 6*300)/400 = 5.
        assert!((f.mean_demand().get(cluster::Resource::Cpu) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_demand_empty_phases_zero() {
        let f = FunctionSpec {
            name: "f".into(),
            cold_start: None,
            phases: vec![],
            memory_gb: 0.0,
            concurrency: 1,
        };
        assert_eq!(f.mean_demand(), Demand::zero());
    }

    #[test]
    fn phase_load_carries_socket() {
        let p = phase(10.0);
        let load = p.load(2);
        assert_eq!(load.socket, 2);
        assert_eq!(load.demand, p.demand);
    }
}
