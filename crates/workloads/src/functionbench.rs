//! FunctionBench-like microbenchmarks and SC applications (paper §2, §6.1).
//!
//! The paper uses these as interference *sources* (corunners) and as SC
//! prediction targets. Each builder returns a [`Workload`] whose phase
//! parameters encode the published pressure signature:
//!
//! * `matrix_multiplication` — CPU-intensive, large LLC footprint.
//! * `dd` — disk-I/O-intensive.
//! * `iperf` — network-intensive (and therefore nearly interference-neutral
//!   for CPU-bound victims — Observation 1's "iperf does not impact IPC").
//! * `video_processing` — high CPU & memory pressure, medium disk/network.
//! * `float_operation` — short CPU burst (the one FunctionBench app the
//!   paper notes does *not* take minutes).
//! * `feature_generation` — a three-function SC pipeline used as training
//!   data in the Figure 5 study.
//! * `logistic_regression` / `kmeans` — multi-phase SC jobs whose later
//!   map and shuffle phases are markedly more interference-sensitive,
//!   reproducing Observation 3 / Figure 3(b).

use crate::class::WorkloadClass;
use crate::dag::{CallGraph, CallKind};
use crate::function::{FunctionSpec, PhaseSpec, Workload};
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, Sensitivity};
use simcore::SimTime;

/// Convenience constructor for a phase.
#[allow(clippy::too_many_arguments)]
fn phase(
    secs: f64,
    demand: Demand,
    bounded: Boundedness,
    sens: Sensitivity,
    micro: MicroarchBaseline,
) -> PhaseSpec {
    PhaseSpec {
        duration: SimTime::from_secs(secs),
        demand,
        bounded,
        sens,
        micro,
    }
}

fn cpu_micro(ipc: f64, l3: f64) -> MicroarchBaseline {
    MicroarchBaseline {
        ipc,
        l3_mpki: l3,
        ..MicroarchBaseline::generic()
    }
}

/// Matrix multiplication: CPU-intensive with a large cache footprint.
/// Solo runtime ≈ 2 minutes.
pub fn matrix_multiplication() -> Workload {
    let p = phase(
        120.0,
        Demand::new(8.0, 60.0, 24.0, 0.0, 0.0, 2.0),
        Boundedness::cpu_bound(),
        Sensitivity::new(1.5, 1.5, 0.5),
        cpu_micro(2.2, 0.8),
    );
    let mut f = FunctionSpec::single_phase("matmul", p);
    f.cold_start = Some(phase(
        1.0,
        Demand::new(0.5, 2.0, 1.0, 30.0, 5.0, 2.0),
        Boundedness::new(0.5, 0.5, 0.0),
        Sensitivity::new(0.3, 0.3, 0.2),
        cpu_micro(1.0, 2.0),
    ));
    Workload::new(
        "matrix-multiplication",
        WorkloadClass::ShortTerm,
        CallGraph::single(f),
    )
}

/// `dd`: disk-I/O-intensive streaming write. Solo runtime ≈ 90 s.
pub fn dd() -> Workload {
    let p = phase(
        90.0,
        Demand::new(0.5, 4.0, 1.0, 450.0, 0.0, 0.5),
        Boundedness::new(0.1, 0.9, 0.0),
        Sensitivity::new(0.2, 0.2, 0.2),
        MicroarchBaseline {
            ipc: 0.9,
            context_switches: 3000.0,
            ..MicroarchBaseline::generic()
        },
    );
    Workload::new(
        "dd",
        WorkloadClass::Background,
        CallGraph::single(FunctionSpec::single_phase("dd", p)),
    )
}

/// `iperf`: network-bandwidth saturator. Solo runtime ≈ 90 s.
pub fn iperf() -> Workload {
    let p = phase(
        90.0,
        Demand::new(0.3, 1.0, 0.3, 0.0, 900.0, 0.25),
        Boundedness::new(0.05, 0.0, 0.95),
        Sensitivity::immune(),
        MicroarchBaseline {
            ipc: 0.8,
            context_switches: 5000.0,
            ..MicroarchBaseline::generic()
        },
    );
    Workload::new(
        "iperf",
        WorkloadClass::Background,
        CallGraph::single(FunctionSpec::single_phase("iperf", p)),
    )
}

/// Video processing: heavy CPU and memory pressure, medium disk/network.
/// Solo runtime ≈ 3 minutes.
pub fn video_processing() -> Workload {
    let p = phase(
        180.0,
        Demand::new(6.0, 50.0, 16.0, 250.0, 150.0, 3.0),
        Boundedness::new(0.7, 0.15, 0.15),
        Sensitivity::new(1.5, 1.0, 0.6),
        cpu_micro(1.4, 3.5),
    );
    Workload::new(
        "video-processing",
        WorkloadClass::ShortTerm,
        CallGraph::single(FunctionSpec::single_phase("video-processing", p)),
    )
}

/// Float operation: sub-second CPU burst.
pub fn float_operation() -> Workload {
    let p = phase(
        0.4,
        Demand::new(1.0, 3.0, 0.5, 0.0, 0.0, 0.125),
        Boundedness::cpu_bound(),
        Sensitivity::new(0.5, 0.3, 0.4),
        cpu_micro(2.8, 0.2),
    );
    Workload::new(
        "float-operation",
        WorkloadClass::Background,
        CallGraph::single(FunctionSpec::single_phase("float-op", p)),
    )
}

/// Feature generation: a three-function SC pipeline
/// (extract → transform → aggregate), used as *training* workload for the
/// function-level vs workload-level study (Fig. 5).
pub fn feature_generation() -> Workload {
    let mut g = CallGraph::new();
    let extract = g.add(FunctionSpec::single_phase(
        "fg-extract",
        phase(
            20.0,
            Demand::new(0.8, 4.0, 1.0, 90.0, 10.0, 0.5),
            Boundedness::new(0.3, 0.6, 0.1),
            Sensitivity::new(0.4, 0.4, 0.3),
            cpu_micro(1.1, 2.0),
        ),
    ));
    let transform = g.add(FunctionSpec::single_phase(
        "fg-transform",
        phase(
            45.0,
            Demand::new(5.0, 30.0, 12.0, 0.0, 0.0, 1.5),
            Boundedness::cpu_bound(),
            Sensitivity::new(1.0, 1.2, 0.5),
            cpu_micro(1.8, 1.2),
        ),
    ));
    let aggregate = g.add(FunctionSpec::single_phase(
        "fg-aggregate",
        phase(
            15.0,
            Demand::new(1.0, 8.0, 3.0, 0.0, 20.0, 0.75),
            Boundedness::new(0.7, 0.0, 0.3),
            Sensitivity::new(0.8, 0.8, 0.4),
            cpu_micro(1.3, 2.5),
        ),
    ));
    g.link(extract, transform, CallKind::Async);
    g.link(transform, aggregate, CallKind::Async);
    Workload::new("feature-generation", WorkloadClass::ShortTerm, g)
}

/// Logistic regression over 4 M examples (paper: 15 GB, 60 instances,
/// solo JCT ≈ 429 s). Three phases of rising interference sensitivity:
/// early map, late map, and the memory/network-heavy shuffle — the
/// structure behind Figure 3(b)'s start-delay sweep.
pub fn logistic_regression() -> Workload {
    let map_early = phase(
        180.0,
        Demand::new(2.5, 20.0, 8.0, 40.0, 10.0, 4.0),
        Boundedness::new(0.8, 0.15, 0.05),
        Sensitivity::new(0.6, 0.6, 0.3),
        cpu_micro(1.9, 1.0),
    );
    let map_late = phase(
        150.0,
        Demand::new(3.5, 40.0, 16.0, 10.0, 10.0, 6.0),
        Boundedness::new(0.9, 0.05, 0.05),
        Sensitivity::new(1.8, 2.0, 0.6),
        cpu_micro(1.5, 2.5),
    );
    let shuffle = phase(
        100.0,
        Demand::new(2.0, 55.0, 10.0, 20.0, 400.0, 5.0),
        Boundedness::new(0.5, 0.1, 0.4),
        Sensitivity::new(2.0, 1.5, 0.5),
        cpu_micro(1.0, 4.0),
    );
    let f = FunctionSpec {
        name: "logistic-regression".into(),
        cold_start: None,
        phases: vec![map_early, map_late, shuffle],
        memory_gb: 6.0,
        concurrency: 1,
    };
    Workload::new(
        "logistic-regression",
        WorkloadClass::ShortTerm,
        CallGraph::single(f),
    )
}

/// KMeans over two 4 M-point partitions (paper: 15 GB, 60 instances).
/// Alternating compute/shuffle phases with sensitive shuffles.
pub fn kmeans() -> Workload {
    let compute = |secs: f64| {
        phase(
            secs,
            Demand::new(3.0, 35.0, 14.0, 0.0, 5.0, 5.0),
            Boundedness::new(0.9, 0.0, 0.1),
            Sensitivity::new(1.4, 1.6, 0.5),
            cpu_micro(1.7, 1.8),
        )
    };
    let shuffle = |secs: f64| {
        phase(
            secs,
            Demand::new(1.5, 50.0, 8.0, 0.0, 350.0, 5.0),
            Boundedness::new(0.5, 0.0, 0.5),
            Sensitivity::new(1.8, 1.2, 0.4),
            cpu_micro(1.0, 3.5),
        )
    };
    let f = FunctionSpec {
        name: "kmeans".into(),
        cold_start: None,
        phases: vec![compute(140.0), shuffle(60.0), compute(120.0), shuffle(60.0)],
        memory_gb: 5.0,
        concurrency: 1,
    };
    Workload::new("kmeans", WorkloadClass::ShortTerm, CallGraph::single(f))
}

/// The four Observation-1 corunners in paper order (Fig. 3(a)'s columns).
pub fn observation1_corunners() -> Vec<Workload> {
    vec![matrix_multiplication(), dd(), iperf(), video_processing()]
}

/// Every FunctionBench-derived workload in this module.
pub fn all() -> Vec<Workload> {
    vec![
        matrix_multiplication(),
        dd(),
        iperf(),
        video_processing(),
        float_operation(),
        feature_generation(),
        logistic_regression(),
        kmeans(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Resource;

    #[test]
    fn all_builds_and_names_unique() {
        let ws = all();
        assert_eq!(ws.len(), 8);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn pressure_signatures_match_paper() {
        let mm = matrix_multiplication();
        let mm_d = mm.graph.func(mm.graph.roots()[0]).mean_demand();
        assert!(mm_d.get(Resource::Cpu) >= 3.0, "matmul is CPU-intensive");
        assert_eq!(mm_d.get(Resource::Net), 0.0);

        let dd_w = dd();
        let dd_d = dd_w.graph.func(dd_w.graph.roots()[0]).mean_demand();
        assert!(dd_d.get(Resource::Disk) > 100.0, "dd is disk-intensive");

        let ip = iperf();
        let ip_d = ip.graph.func(ip.graph.roots()[0]).mean_demand();
        assert!(ip_d.get(Resource::Net) > 300.0, "iperf is net-intensive");
        assert!(ip_d.get(Resource::Cpu) < 1.0);
    }

    #[test]
    fn iperf_is_interference_immune() {
        let ip = iperf();
        let f = ip.graph.func(ip.graph.roots()[0]);
        assert_eq!(f.phases[0].sens, Sensitivity::immune());
    }

    #[test]
    fn lr_phases_increase_in_sensitivity() {
        let lr = logistic_regression();
        let f = lr.graph.func(lr.graph.roots()[0]);
        assert_eq!(f.phases.len(), 3);
        assert!(f.phases[1].sens.llc > f.phases[0].sens.llc);
        assert!(f.phases[2].sens.membw > f.phases[0].sens.membw);
        // Solo JCT ≈ 430 s, matching the paper's 429 s.
        let jct = f.warm_duration().as_secs();
        assert!((jct - 430.0).abs() < 5.0, "JCT {jct}");
    }

    #[test]
    fn kmeans_alternates_phases() {
        let km = kmeans();
        let f = km.graph.func(km.graph.roots()[0]);
        assert_eq!(f.phases.len(), 4);
        assert!(f.phases[1].demand.get(Resource::Net) > f.phases[0].demand.get(Resource::Net));
    }

    #[test]
    fn feature_generation_is_a_pipeline() {
        let fg = feature_generation();
        assert_eq!(fg.num_functions(), 3);
        assert_eq!(fg.graph.roots().len(), 1);
        // Chain: end-to-end = 20 + 45 + 15 = 80 s.
        assert!((fg.critical_path_duration().as_secs() - 80.0).abs() < 1e-6);
    }

    #[test]
    fn float_operation_is_short() {
        let fo = float_operation();
        assert!(fo.critical_path_duration().as_secs() < 1.0);
    }

    #[test]
    fn matmul_has_cold_start() {
        let mm = matrix_multiplication();
        let f = mm.graph.func(mm.graph.roots()[0]);
        assert!(f.cold_start.is_some());
        assert!(f.cold_duration() > f.warm_duration());
    }
}
