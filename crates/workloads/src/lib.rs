//! `workloads` — models of the serverless applications the paper evaluates.
//!
//! The paper drives its testbed with FunctionBench microbenchmarks, the
//! DeathStarBench *social network* ported to OpenFaaS (Fig. 2's nine-function
//! message-posting call path), a TPC-W-style *e-commerce* application, and
//! invocation dynamics replayed from the Azure Functions production trace.
//! This crate models all of them:
//!
//! * [`function`] — functions as sequences of *phases*, each with a resource
//!   demand vector, bottleneck decomposition, interference sensitivity and a
//!   microarchitecture counter baseline.
//! * [`dag`] — call-path graphs with asynchronous (sequence-chain) and
//!   nested (caller-blocks) edges, plus critical-path analysis.
//! * [`functionbench`] — matrix multiplication, dd, iperf, video processing,
//!   float ops, feature generation, LogisticRegression and KMeans.
//! * [`socialnetwork`] / [`ecommerce`] — the two latency-sensitive
//!   applications with their paper SLAs (267 ms and 88 ms p99).
//! * [`websearch`] — Table 1's third LS example (serverless information
//!   retrieval) with parallel index-shard fan-out.
//! * [`azure_trace`] — diurnal/weekly invocation-rate generation matching
//!   the published Azure characterization.
//! * [`loadgen`] — the open-loop load generator of paper §6.4.
//! * [`trace_io`] — CSV import/export of invocation traces, so a real
//!   (e.g. Azure) trace can be plugged in where this reproduction uses its
//!   synthetic equivalent.
//! * [`population`] — synthetic function populations drawn from the Azure
//!   duration/memory distributions, for high-density scale tests.

//!
//! # Examples
//!
//! ```
//! use workloads::socialnetwork;
//!
//! let w = socialnetwork::message_posting();
//! assert_eq!(w.num_functions(), 9);
//! // Fig. 2's critical path: compose-post -> upload-media ->
//! // compose-and-upload -> upload-home-timeline -> get-followers.
//! let cp = w.graph.critical_path();
//! assert!(cp.contains(&w.graph.find("upload-media").unwrap()));
//! assert!(!cp.contains(&w.graph.find("post-storage").unwrap()));
//! ```

pub mod azure_trace;
pub mod class;
pub mod dag;
pub mod ecommerce;
pub mod function;
pub mod functionbench;
pub mod loadgen;
pub mod population;
pub mod socialnetwork;
pub mod trace_io;
pub mod websearch;

pub use class::WorkloadClass;
pub use dag::{CallGraph, CallKind, NodeId};
pub use function::{FunctionSpec, PhaseSpec, Workload};
