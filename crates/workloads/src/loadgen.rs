//! Open-loop load generation (paper §6.4: "we develop an open-loop load
//! generator, which can test each LS workload under various access loads and
//! generate profiles within 5 minutes").
//!
//! Open-loop means arrivals are generated independently of completions, so a
//! saturated system accumulates queueing — exactly the regime where the
//! latency–IPC knee (Fig. 7) appears.

use crate::azure_trace::RateProfile;
use simcore::dist::exponential;
use simcore::{SimRng, SimTime};

/// Generate Poisson arrival times at a constant rate over `[0, horizon)`.
pub fn poisson_arrivals(rps: f64, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
    assert!(rps >= 0.0, "negative rate");
    let mut out = Vec::new();
    if rps == 0.0 {
        return out;
    }
    let mut t = 0.0;
    let end = horizon.as_secs();
    loop {
        t += exponential(rng, rps);
        if t >= end {
            break;
        }
        out.push(SimTime::from_secs(t));
    }
    out
}

/// Generate arrivals following a time-varying [`RateProfile`] by thinning:
/// candidate arrivals are drawn at the profile's peak rate and accepted with
/// probability `rate(t)/peak`.
pub fn profile_arrivals(profile: &RateProfile, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
    let peak = profile.base_rps * (1.0 + profile.diurnal_amplitude) * (1.0 + profile.jitter);
    if peak <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut t = 0.0;
    let end = horizon.as_secs();
    loop {
        t += exponential(rng, peak);
        if t >= end {
            break;
        }
        let at = SimTime::from_secs(t);
        let accept = profile.rate_at(at) / peak;
        if rng.chance(accept) {
            out.push(at);
        }
    }
    out
}

/// Evenly spaced deterministic arrivals (used by tests and by experiments
/// that want zero arrival noise).
pub fn uniform_arrivals(rps: f64, horizon: SimTime) -> Vec<SimTime> {
    if rps <= 0.0 {
        return Vec::new();
    }
    let period_us = (1e6 / rps).round() as u64;
    assert!(period_us > 0, "rate too high for microsecond resolution");
    (0..)
        .map(|i| SimTime::from_micros(i * period_us))
        .take_while(|&t| t < horizon)
        .collect()
}

/// The QPS sweep levels the profiling phase tests each LS workload at
/// (fractions of a nominal maximum load).
pub fn qps_sweep(max_qps: f64, levels: usize) -> Vec<f64> {
    assert!(levels > 0);
    (1..=levels)
        .map(|i| max_qps * i as f64 / levels as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrival_rate_matches() {
        let mut rng = SimRng::new(3);
        let arr = poisson_arrivals(100.0, SimTime::from_secs(100.0), &mut rng);
        let rate = arr.len() as f64 / 100.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn poisson_arrivals_sorted_and_bounded() {
        let mut rng = SimRng::new(5);
        let horizon = SimTime::from_secs(10.0);
        let arr = poisson_arrivals(50.0, horizon, &mut rng);
        for w in arr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arr.iter().all(|&t| t < horizon));
    }

    #[test]
    fn zero_rate_yields_no_arrivals() {
        let mut rng = SimRng::new(1);
        assert!(poisson_arrivals(0.0, SimTime::from_secs(10.0), &mut rng).is_empty());
        assert!(uniform_arrivals(0.0, SimTime::from_secs(10.0)).is_empty());
    }

    #[test]
    fn profile_arrivals_follow_diurnal_shape() {
        let profile = RateProfile::azure_like(20.0);
        let mut rng = SimRng::new(11);
        let arr = profile_arrivals(&profile, SimTime::from_secs(86_400.0), &mut rng);
        // Count arrivals in the peak hour (15:00) vs the trough hour (03:00).
        let count_in = |h: f64| {
            arr.iter()
                .filter(|t| {
                    let s = t.as_secs();
                    s >= h * 3600.0 && s < (h + 1.0) * 3600.0
                })
                .count()
        };
        let peak = count_in(15.0);
        let trough = count_in(3.0);
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn uniform_arrivals_evenly_spaced() {
        let arr = uniform_arrivals(10.0, SimTime::from_secs(1.0));
        assert_eq!(arr.len(), 10);
        assert_eq!(arr[1].since(arr[0]), SimTime::from_millis(100.0));
    }

    #[test]
    fn qps_sweep_ascending_to_max() {
        let sweep = qps_sweep(200.0, 4);
        assert_eq!(sweep, vec![50.0, 100.0, 150.0, 200.0]);
    }
}
