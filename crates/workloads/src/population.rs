//! Synthetic function populations drawn from the Azure characterization.
//!
//! The paper's motivation rests on *scale*: hundreds of small functions per
//! 256 GB server (§1), 90 % under 400 MB, half the invocations under a
//! second (§2). This module generates whole populations of single-function
//! workloads whose duration and memory follow those published
//! distributions, with Zipf-skewed popularity — the raw material for
//! high-density platform tests and for plugging into the scheduling study
//! at larger function counts.

use crate::azure_trace::AzureFunctionStats;
use crate::class::WorkloadClass;
use crate::dag::CallGraph;
use crate::function::{FunctionSpec, PhaseSpec, Workload};
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, Sensitivity};
use simcore::dist::Zipf;
use simcore::{SimRng, SimTime};

/// One member of a generated population.
#[derive(Debug, Clone)]
pub struct PopulationMember {
    /// The workload (single function).
    pub workload: Workload,
    /// Relative invocation weight (Zipf over the population).
    pub popularity: f64,
}

/// Population generation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// Number of functions.
    pub size: usize,
    /// Zipf exponent for invocation popularity (Azure: a few hot functions
    /// dominate; ~1.1 is a reasonable skew).
    pub zipf_exponent: f64,
    /// Fraction of functions that are latency-sensitive (the rest BG).
    pub ls_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            size: 100,
            zipf_exponent: 1.1,
            ls_fraction: 0.6,
        }
    }
}

/// Generate a population. Deterministic given the seed.
pub fn generate(config: &PopulationConfig, seed: u64) -> Vec<PopulationMember> {
    assert!(config.size > 0, "population must be non-empty");
    assert!((0.0..=1.0).contains(&config.ls_fraction));
    let mut rng = SimRng::new(seed);
    let zipf = Zipf::new(config.size, config.zipf_exponent);
    // Popularity of rank k ∝ 1/(k+1)^s; reuse the Zipf CDF by sampling is
    // overkill — compute weights directly.
    let weights: Vec<f64> = (1..=config.size)
        .map(|k| 1.0 / (k as f64).powf(config.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let _ = zipf; // popularity is derived analytically; Zipf validates size

    (0..config.size)
        .map(|i| {
            let duration = AzureFunctionStats::sample_duration(&mut rng);
            let memory = AzureFunctionStats::sample_memory_gb(&mut rng);
            // Resource intensity loosely scales with memory footprint.
            let cpu = 0.1 + rng.f64() * 0.5;
            let membw = memory * (2.0 + rng.f64() * 6.0);
            let llc = (memory * (1.0 + rng.f64() * 3.0)).min(8.0);
            let is_ls = rng.chance(config.ls_fraction);
            let phase = PhaseSpec {
                // LS functions serve sub-second requests; BG keep the
                // sampled duration (capped for tractable tests).
                duration: if is_ls {
                    SimTime::from_millis(5.0 + rng.f64() * 200.0)
                } else {
                    SimTime::from_micros(duration.as_micros().min(120_000_000))
                },
                demand: Demand::new(cpu, membw, llc, 0.0, rng.f64() * 5.0, memory),
                bounded: Boundedness::new(0.9, 0.0, 0.1),
                sens: Sensitivity::new(rng.f64() * 2.0, rng.f64() * 2.0, 0.4),
                micro: MicroarchBaseline {
                    ipc: 0.8 + rng.f64() * 1.6,
                    l3_mpki: rng.f64() * 6.0,
                    ..MicroarchBaseline::generic()
                },
            };
            let mut f = FunctionSpec::single_phase(format!("pop-fn-{i}"), phase);
            f.concurrency = if is_ls { 2 } else { 1 };
            let class = if is_ls {
                WorkloadClass::LatencySensitive
            } else {
                WorkloadClass::Background
            };
            PopulationMember {
                workload: Workload::new(format!("pop-{i}"), class, CallGraph::single(f)),
                popularity: weights[i] / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Resource;

    #[test]
    fn population_matches_azure_statistics() {
        let pop = generate(
            &PopulationConfig {
                size: 2000,
                ..Default::default()
            },
            1,
        );
        assert_eq!(pop.len(), 2000);
        // 90 % of memory allocations under 400 MB (with sampling slack).
        let under_400mb = pop
            .iter()
            .filter(|m| {
                let root = m.workload.graph.roots()[0];
                m.workload.graph.func(root).memory_gb <= 0.4
            })
            .count();
        let frac = under_400mb as f64 / pop.len() as f64;
        assert!((0.85..=0.95).contains(&frac), "P(mem<=400MB) = {frac}");
    }

    #[test]
    fn popularity_is_zipf_normalised() {
        let pop = generate(&PopulationConfig::default(), 2);
        let total: f64 = pop.iter().map(|m| m.popularity).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pop[0].popularity > pop[10].popularity);
        assert!(pop[10].popularity > pop[99].popularity);
    }

    #[test]
    fn class_mix_follows_fraction() {
        let pop = generate(
            &PopulationConfig {
                size: 1000,
                ls_fraction: 0.6,
                ..Default::default()
            },
            3,
        );
        let ls = pop
            .iter()
            .filter(|m| m.workload.class == WorkloadClass::LatencySensitive)
            .count();
        let frac = ls as f64 / pop.len() as f64;
        assert!((0.55..=0.65).contains(&frac), "LS fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&PopulationConfig::default(), 7);
        let b = generate(&PopulationConfig::default(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.popularity, y.popularity);
            assert_eq!(
                x.workload.graph.func(x.workload.graph.roots()[0]).phases[0].demand,
                y.workload.graph.func(y.workload.graph.roots()[0]).phases[0].demand,
            );
        }
    }

    #[test]
    fn demands_small_enough_for_high_density() {
        // §1's premise: a 256 GB server fits hundreds of such functions.
        let pop = generate(
            &PopulationConfig {
                size: 300,
                ..Default::default()
            },
            5,
        );
        let total_mem: f64 = pop
            .iter()
            .map(|m| {
                let root = m.workload.graph.roots()[0];
                m.workload.graph.func(root).phases[0]
                    .demand
                    .get(Resource::Memory)
            })
            .sum();
        assert!(
            total_mem < 256.0,
            "300 sampled functions should fit one node's RAM, need {total_mem} GB"
        );
    }
}
