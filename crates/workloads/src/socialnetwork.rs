//! The DeathStarBench *social network* message-posting workload, ported to
//! functions exactly as in paper Fig. 2: nine functions over multiple
//! branches, with critical path ①→②→⑥→⑧→⑨ and non-critical functions
//! ③, ④, ⑤, ⑦.

use crate::class::WorkloadClass;
use crate::dag::{CallGraph, CallKind, NodeId};
use crate::function::{FunctionSpec, PhaseSpec, Workload};
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, Sensitivity};
use simcore::SimTime;

/// The paper's stated p99 SLA for *social network*: 267 ms (§6.3).
pub const SLA_P99_MS: f64 = 267.0;

/// Canonical function names in Fig. 2 numbering order.
pub const FUNCTION_NAMES: [&str; 9] = [
    "compose-post",         // ①
    "upload-media",         // ②
    "upload-text",          // ③
    "upload-urls",          // ④
    "upload-unique-id",     // ⑤
    "compose-and-upload",   // ⑥
    "post-storage",         // ⑦
    "upload-home-timeline", // ⑧
    "get-followers",        // ⑨
];

#[allow(clippy::too_many_arguments)]
fn func(
    name: &str,
    ms: f64,
    demand: Demand,
    sens: Sensitivity,
    micro: MicroarchBaseline,
    concurrency: u32,
) -> FunctionSpec {
    let work = PhaseSpec {
        duration: SimTime::from_millis(ms),
        demand,
        bounded: Boundedness::new(0.9, 0.0, 0.1),
        sens,
        micro,
    };
    // Cold start: container boot + runtime init, disk-heavy, ~400 ms.
    let cold = PhaseSpec {
        duration: SimTime::from_millis(400.0),
        demand: Demand::new(
            0.5,
            2.0,
            1.0,
            60.0,
            5.0,
            demand.get(cluster::Resource::Memory),
        ),
        bounded: Boundedness::new(0.4, 0.6, 0.0),
        sens: Sensitivity::new(0.3, 0.3, 0.2),
        micro: MicroarchBaseline {
            ipc: 0.9,
            ..MicroarchBaseline::generic()
        },
    };
    FunctionSpec {
        name: name.into(),
        cold_start: Some(cold),
        phases: vec![work],
        memory_gb: demand.get(cluster::Resource::Memory),
        concurrency,
    }
}

/// Build the nine-function message-posting workload.
///
/// Edge structure (Fig. 2): ① fans out to ②–⑤ as nested RPCs (the
/// orchestrator waits for the uploads); ⑥ joins them asynchronously; ⑥
/// forwards to ⑦ (storage, off the critical path) and ⑧; ⑧ calls ⑨ as a
/// nested RPC.
pub fn message_posting() -> Workload {
    let mut g = CallGraph::new();
    // Durations chosen so the solo critical path ≈ 128 ms, leaving the
    // paper's 267 ms p99 SLA ≈ 2× headroom for load-dependent queueing.
    let n1 = g.add(func(
        "compose-post",
        8.0,
        Demand::new(0.167, 0.667, 0.267, 0.0, 2.5, 0.25),
        Sensitivity::new(0.3, 0.3, 0.3),
        MicroarchBaseline {
            ipc: 1.8,
            context_switches: 2000.0,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    let n2 = g.add(func(
        "upload-media",
        45.0,
        Demand::new(0.4, 2.667, 0.667, 10.0, 20.0, 0.4),
        Sensitivity::new(0.8, 0.6, 0.4),
        MicroarchBaseline {
            ipc: 1.2,
            l3_mpki: 2.5,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    let n3 = g.add(func(
        "upload-text",
        10.0,
        Demand::new(0.133, 0.667, 0.2, 0.0, 2.0, 0.125),
        Sensitivity::new(0.5, 0.4, 0.3),
        MicroarchBaseline::generic(),
        3,
    ));
    let n4 = g.add(func(
        "upload-urls",
        12.0,
        Demand::new(0.133, 0.667, 0.2, 0.0, 3.0, 0.125),
        Sensitivity::new(0.5, 0.4, 0.3),
        MicroarchBaseline::generic(),
        3,
    ));
    let n5 = g.add(func(
        "upload-unique-id",
        6.0,
        Demand::new(0.1, 0.333, 0.1, 0.0, 1.0, 0.125),
        Sensitivity::new(0.4, 0.3, 0.3),
        MicroarchBaseline {
            ipc: 2.0,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    let n6 = g.add(func(
        "compose-and-upload",
        30.0,
        Demand::new(0.333, 3.333, 1.0, 0.0, 7.5, 0.4),
        Sensitivity::new(1.0, 1.0, 0.5),
        MicroarchBaseline {
            ipc: 1.4,
            l3_mpki: 3.0,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    let n7 = g.add(func(
        "post-storage",
        15.0,
        Demand::new(0.167, 1.333, 0.5, 20.0, 4.0, 0.25),
        Sensitivity::new(0.6, 0.6, 0.3),
        MicroarchBaseline {
            ipc: 1.0,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    let n8 = g.add(func(
        "upload-home-timeline",
        25.0,
        Demand::new(0.267, 2.667, 0.833, 0.0, 6.0, 0.3),
        Sensitivity::new(1.2, 1.0, 0.4),
        MicroarchBaseline {
            ipc: 1.3,
            l3_mpki: 2.8,
            ..MicroarchBaseline::generic()
        },
        3,
    ));
    // ⑨ get-followers: cache/memory-heavy fan-out read — the function the
    // paper finds 3× more sensitive than ① (Observation 2).
    let n9 = g.add(func(
        "get-followers",
        20.0,
        Demand::new(0.333, 5.333, 1.333, 0.0, 5.0, 0.4),
        Sensitivity::new(2.2, 2.5, 0.6),
        MicroarchBaseline {
            ipc: 0.9,
            l3_mpki: 6.0,
            l2_mpki: 9.0,
            dtlb_mpki: 2.0,
            ..MicroarchBaseline::generic()
        },
        3,
    ));

    g.link(n1, n2, CallKind::Nested);
    g.link(n1, n3, CallKind::Nested);
    g.link(n1, n4, CallKind::Nested);
    g.link(n1, n5, CallKind::Nested);
    g.link(n2, n6, CallKind::Async);
    g.link(n3, n6, CallKind::Async);
    g.link(n4, n6, CallKind::Async);
    g.link(n5, n6, CallKind::Async);
    g.link(n6, n7, CallKind::Async);
    g.link(n6, n8, CallKind::Async);
    g.link(n8, n9, CallKind::Nested);

    Workload::new("social-network", WorkloadClass::LatencySensitive, g)
}

/// Node ids of the Fig. 2 functions in ①..⑨ order.
pub fn numbered_nodes(w: &Workload) -> Vec<NodeId> {
    FUNCTION_NAMES
        .iter()
        .map(|name| w.graph.find(name).expect("social network function missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_functions_named_like_fig2() {
        let w = message_posting();
        assert_eq!(w.num_functions(), 9);
        for name in FUNCTION_NAMES {
            assert!(w.graph.find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn critical_path_matches_paper() {
        let w = message_posting();
        let nodes = numbered_nodes(&w);
        let cp = w.graph.critical_path();
        // Critical: ① ② ⑥ ⑧ ⑨ (indices 0, 1, 5, 7, 8).
        for &i in &[0usize, 1, 5, 7, 8] {
            assert!(cp.contains(&nodes[i]), "fn {} should be critical", i + 1);
        }
        // Non-critical: ③ ④ ⑤ ⑦ (indices 2, 3, 4, 6).
        for &i in &[2usize, 3, 4, 6] {
            assert!(
                !cp.contains(&nodes[i]),
                "fn {} should not be critical",
                i + 1
            );
        }
    }

    #[test]
    fn solo_latency_under_sla() {
        let w = message_posting();
        let solo_ms = w.critical_path_duration().as_millis();
        assert!(
            solo_ms < SLA_P99_MS / 1.5,
            "solo latency {solo_ms} ms leaves no SLA headroom"
        );
        assert!(solo_ms > 100.0, "solo latency {solo_ms} ms implausibly low");
    }

    #[test]
    fn get_followers_most_sensitive() {
        let w = message_posting();
        let nodes = numbered_nodes(&w);
        let sens9 = w.graph.func(nodes[8]).phases[0].sens;
        let sens1 = w.graph.func(nodes[0]).phases[0].sens;
        assert!(sens9.llc > 3.0 * sens1.llc, "Observation 2's 3x spread");
    }

    #[test]
    fn all_functions_have_cold_starts() {
        let w = message_posting();
        for id in w.graph.ids() {
            assert!(w.graph.func(id).cold_start.is_some());
        }
    }

    #[test]
    fn functions_are_small() {
        // Azure characterization: 90 % of functions under 400 MB.
        let w = message_posting();
        for id in w.graph.ids() {
            assert!(w.graph.func(id).memory_gb <= 0.4);
        }
    }
}
