//! Invocation-trace import/export.
//!
//! The paper replays the (non-redistributable) Azure Functions production
//! trace; this module lets a downstream user plug a *real* trace in: a CSV
//! of `minute,invocations` rows — the shape of the published Azure dataset's
//! per-function invocation counts — parses into a [`PiecewiseRate`] that the
//! load generator can sample arrivals from, and any [`RateProfile`] can be
//! exported back to the same format for inspection.

use crate::azure_trace::RateProfile;
use simcore::dist::poisson;
use simcore::{SimRng, SimTime};

/// A piecewise-constant request-rate profile (one rate per fixed-length
/// bucket, requests/second).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseRate {
    /// Bucket length.
    pub bucket: SimTime,
    /// Rate (req/s) per bucket.
    pub rates: Vec<f64>,
}

impl PiecewiseRate {
    /// Construct; panics on empty rates, zero bucket, or negative rates.
    pub fn new(bucket: SimTime, rates: Vec<f64>) -> Self {
        assert!(bucket > SimTime::ZERO, "bucket must be positive");
        assert!(!rates.is_empty(), "need at least one bucket");
        assert!(rates.iter().all(|&r| r >= 0.0), "negative rate");
        Self { bucket, rates }
    }

    /// Rate at time `t` (zero past the end of the trace).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        self.rates.get(idx).copied().unwrap_or(0.0)
    }

    /// Total covered duration.
    pub fn duration(&self) -> SimTime {
        SimTime(self.bucket.as_micros() * self.rates.len() as u64)
    }

    /// Sample Poisson arrival times over the whole trace.
    pub fn arrivals(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let bucket_s = self.bucket.as_secs();
        for (i, &rate) in self.rates.iter().enumerate() {
            let n = poisson(rng, rate * bucket_s);
            let start = self.bucket.as_micros() * i as u64;
            let mut in_bucket: Vec<u64> = (0..n)
                .map(|_| start + (rng.f64() * self.bucket.as_micros() as f64) as u64)
                .collect();
            in_bucket.sort_unstable();
            out.extend(in_bucket.into_iter().map(SimTime));
        }
        out
    }

    /// Parse from CSV text: header optional, rows `bucket_index,invocations`
    /// (invocations per bucket, converted to req/s). Blank lines ignored.
    pub fn from_csv(text: &str, bucket: SimTime) -> Result<Self, String> {
        let mut rows: Vec<(usize, f64)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let a = parts.next().unwrap_or("").trim();
            let b = parts
                .next()
                .ok_or_else(|| format!("line {}: expected two columns", lineno + 1))?
                .trim();
            // Skip a header row.
            if a.parse::<usize>().is_err() && lineno == 0 {
                continue;
            }
            let idx: usize = a
                .parse()
                .map_err(|_| format!("line {}: bad bucket index {a:?}", lineno + 1))?;
            let count: f64 = b
                .parse()
                .map_err(|_| format!("line {}: bad count {b:?}", lineno + 1))?;
            if count < 0.0 {
                return Err(format!("line {}: negative count", lineno + 1));
            }
            rows.push((idx, count));
        }
        if rows.is_empty() {
            return Err("no data rows".into());
        }
        let max_idx = rows.iter().map(|r| r.0).max().expect("non-empty");
        let mut rates = vec![0.0; max_idx + 1];
        let bucket_s = bucket.as_secs();
        for (idx, count) in rows {
            rates[idx] = count / bucket_s;
        }
        Ok(Self::new(bucket, rates))
    }

    /// Serialise to the same CSV shape (counts per bucket).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bucket,invocations\n");
        let bucket_s = self.bucket.as_secs();
        for (i, &rate) in self.rates.iter().enumerate() {
            out.push_str(&format!("{},{}\n", i, (rate * bucket_s).round() as u64));
        }
        out
    }
}

/// Sample a [`RateProfile`] into a per-minute piecewise trace covering
/// `horizon` (deterministic: mean rates, no jitter).
pub fn profile_to_piecewise(profile: &RateProfile, horizon: SimTime) -> PiecewiseRate {
    let bucket = SimTime::from_secs(60.0);
    let n = (horizon.as_micros().div_ceil(bucket.as_micros())) as usize;
    let rates = (0..n)
        .map(|i| {
            profile.rate_at(SimTime(
                bucket.as_micros() * i as u64 + bucket.as_micros() / 2,
            ))
        })
        .collect();
    PiecewiseRate::new(bucket, rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_lookup_and_duration() {
        let p = PiecewiseRate::new(SimTime::from_secs(60.0), vec![1.0, 5.0, 2.0]);
        assert_eq!(p.rate_at(SimTime::from_secs(30.0)), 1.0);
        assert_eq!(p.rate_at(SimTime::from_secs(90.0)), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(1000.0)), 0.0);
        assert_eq!(p.duration(), SimTime::from_secs(180.0));
    }

    #[test]
    fn arrivals_follow_rates() {
        let p = PiecewiseRate::new(SimTime::from_secs(60.0), vec![1.0, 20.0]);
        let mut rng = SimRng::new(1);
        let arr = p.arrivals(&mut rng);
        let first: usize = arr.iter().filter(|t| t.as_secs() < 60.0).count();
        let second = arr.len() - first;
        assert!(second > 5 * first, "{first} vs {second}");
        // Sorted.
        for w in arr.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn csv_roundtrip() {
        let p = PiecewiseRate::new(SimTime::from_secs(60.0), vec![1.0, 5.0, 0.0, 2.5]);
        let csv = p.to_csv();
        let back = PiecewiseRate::from_csv(&csv, SimTime::from_secs(60.0)).unwrap();
        assert_eq!(back.rates.len(), 4);
        assert!((back.rates[1] - 5.0).abs() < 1e-9);
        // 2.5 req/s × 60 s = 150 invocations → exact roundtrip.
        assert!((back.rates[3] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn csv_with_header_and_gaps() {
        let text = "bucket,invocations\n0,60\n3,120\n";
        let p = PiecewiseRate::from_csv(text, SimTime::from_secs(60.0)).unwrap();
        assert_eq!(p.rates.len(), 4);
        assert_eq!(p.rates[0], 1.0);
        assert_eq!(p.rates[1], 0.0, "gap bucket defaults to zero");
        assert_eq!(p.rates[3], 2.0);
    }

    #[test]
    fn csv_errors() {
        assert!(PiecewiseRate::from_csv("", SimTime::from_secs(60.0)).is_err());
        assert!(PiecewiseRate::from_csv("0", SimTime::from_secs(60.0)).is_err());
        assert!(PiecewiseRate::from_csv("0,-5", SimTime::from_secs(60.0)).is_err());
        assert!(PiecewiseRate::from_csv("x,5\n1,y", SimTime::from_secs(60.0)).is_err());
    }

    #[test]
    fn profile_sampling_preserves_diurnal_shape() {
        let profile = RateProfile::azure_like(50.0);
        let p = profile_to_piecewise(&profile, SimTime::from_secs(86_400.0));
        assert_eq!(p.rates.len(), 1440);
        let peak = p.rate_at(SimTime::from_secs(15.0 * 3600.0));
        let trough = p.rate_at(SimTime::from_secs(3.0 * 3600.0));
        assert!(peak > 2.0 * trough);
    }
}
