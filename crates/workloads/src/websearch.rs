//! A web-search LS workload — the third latency-sensitive application class
//! of paper Table 1 ("Websearch [9]": serverless information retrieval à la
//! Crane & Lin, ICTIR '17).
//!
//! Four functions: a query frontend that fans out to two index-shard
//! searchers in parallel (nested RPCs — the frontend blocks on both) and an
//! aggregator that ranks the merged postings. Shard searchers are the
//! memory-hungry hot spots: index lookups thrash the LLC, the classic
//! web-search profile.

use crate::class::WorkloadClass;
use crate::dag::{CallGraph, CallKind};
use crate::function::{FunctionSpec, PhaseSpec, Workload};
use cluster::microarch::MicroarchBaseline;
use cluster::{Boundedness, Demand, Sensitivity};
use simcore::SimTime;

/// p99 SLA used by the examples/tests for this workload (not a paper
/// number; chosen with the same ~2× headroom rule as the paper's SLAs).
pub const SLA_P99_MS: f64 = 120.0;

/// Canonical function names.
pub const FUNCTION_NAMES: [&str; 4] = [
    "query-frontend",
    "shard-search-0",
    "shard-search-1",
    "rank-aggregate",
];

fn func(
    name: &str,
    ms: f64,
    demand: Demand,
    sens: Sensitivity,
    micro: MicroarchBaseline,
) -> FunctionSpec {
    let work = PhaseSpec {
        duration: SimTime::from_millis(ms),
        demand,
        bounded: Boundedness::new(0.95, 0.0, 0.05),
        sens,
        micro,
    };
    let cold = PhaseSpec {
        duration: SimTime::from_millis(350.0),
        demand: Demand::new(
            0.4,
            2.0,
            1.0,
            50.0,
            4.0,
            demand.get(cluster::Resource::Memory),
        ),
        bounded: Boundedness::new(0.4, 0.6, 0.0),
        sens: Sensitivity::new(0.3, 0.3, 0.2),
        micro: MicroarchBaseline {
            ipc: 0.9,
            ..MicroarchBaseline::generic()
        },
    };
    FunctionSpec {
        name: name.into(),
        cold_start: Some(cold),
        phases: vec![work],
        memory_gb: demand.get(cluster::Resource::Memory),
        concurrency: 3,
    }
}

/// Build the four-function query workload.
pub fn query() -> Workload {
    let mut g = CallGraph::new();
    let frontend = g.add(func(
        "query-frontend",
        5.0,
        Demand::new(0.2, 0.8, 0.3, 0.0, 3.0, 0.2),
        Sensitivity::new(0.4, 0.4, 0.3),
        MicroarchBaseline {
            ipc: 1.9,
            ..MicroarchBaseline::generic()
        },
    ));
    let shard = |name: &str| {
        func(
            name,
            22.0,
            Demand::new(0.5, 6.0, 2.0, 0.0, 2.0, 0.35),
            // Index lookups: highly cache/bandwidth sensitive.
            Sensitivity::new(2.0, 2.2, 0.5),
            MicroarchBaseline {
                ipc: 0.8,
                l3_mpki: 7.0,
                l2_mpki: 10.0,
                dtlb_mpki: 2.5,
                ..MicroarchBaseline::generic()
            },
        )
    };
    let s0 = g.add(shard("shard-search-0"));
    let s1 = g.add(shard("shard-search-1"));
    let rank = g.add(func(
        "rank-aggregate",
        10.0,
        Demand::new(0.4, 2.0, 0.8, 0.0, 2.0, 0.25),
        Sensitivity::new(0.8, 0.8, 0.4),
        MicroarchBaseline {
            ipc: 1.5,
            ..MicroarchBaseline::generic()
        },
    ));
    // Frontend blocks on both shards; ranking runs after the frontend
    // returns with the merged postings.
    g.link(frontend, s0, CallKind::Nested);
    g.link(frontend, s1, CallKind::Nested);
    g.link(frontend, rank, CallKind::Async);
    Workload::new("web-search", WorkloadClass::LatencySensitive, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let w = query();
        assert_eq!(w.num_functions(), 4);
        for name in FUNCTION_NAMES {
            assert!(w.graph.find(name).is_some(), "missing {name}");
        }
        assert_eq!(w.class, WorkloadClass::LatencySensitive);
    }

    #[test]
    fn shards_run_in_parallel() {
        let w = query();
        // Solo latency: frontend 5 + max(shard 22, shard 22) + rank 10 = 37,
        // not 5 + 22 + 22 + 10 = 59.
        let solo = w.critical_path_duration().as_millis();
        assert!((solo - 37.0).abs() < 1e-6, "solo {solo}");
    }

    #[test]
    fn solo_fits_sla() {
        let w = query();
        assert!(w.critical_path_duration().as_millis() < SLA_P99_MS / 1.5);
    }

    #[test]
    fn shards_are_the_sensitive_functions() {
        let w = query();
        let shard = w.graph.func(w.graph.find("shard-search-0").unwrap());
        let front = w.graph.func(w.graph.find("query-frontend").unwrap());
        assert!(shard.phases[0].sens.llc > 4.0 * front.phases[0].sens.llc);
    }

    #[test]
    fn critical_path_is_frontend_shard_rank() {
        let w = query();
        let cp = w.graph.critical_path();
        assert!(cp.contains(&w.graph.find("query-frontend").unwrap()));
        assert!(cp.contains(&w.graph.find("rank-aggregate").unwrap()));
        // At least one shard is critical (both tie).
        assert!(
            cp.contains(&w.graph.find("shard-search-0").unwrap())
                || cp.contains(&w.graph.find("shard-search-1").unwrap())
        );
    }
}
