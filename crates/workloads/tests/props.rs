// Property-based suites need the crates.io `proptest` crate, which this
// offline workspace cannot fetch; the whole file is compiled only when the
// crate's `proptest` feature is enabled (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for call-graph analysis invariants.

use proptest::prelude::*;
use simcore::SimTime;
use workloads::dag::{CallGraph, CallKind};
use workloads::function::{FunctionSpec, PhaseSpec};

fn func(name: String, ms: u64) -> FunctionSpec {
    FunctionSpec::single_phase(
        name,
        PhaseSpec {
            duration: SimTime::from_micros(ms * 1000),
            demand: cluster::Demand::new(0.5, 1.0, 1.0, 0.0, 0.0, 0.25),
            bounded: cluster::Boundedness::cpu_bound(),
            sens: cluster::Sensitivity::new(1.0, 1.0, 0.5),
            micro: cluster::microarch::MicroarchBaseline::generic(),
        },
    )
}

/// Build a random DAG: node i may link to node j > i (keeps it acyclic).
fn arb_dag() -> impl Strategy<Value = (CallGraph, Vec<u64>)> {
    (2usize..10)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(1u64..500, n..=n),
                prop::collection::vec(any::<bool>(), n * (n - 1) / 2..=n * (n - 1) / 2),
                prop::collection::vec(any::<bool>(), n * (n - 1) / 2..=n * (n - 1) / 2),
            )
        })
        .prop_map(|(durations, edges, kinds)| {
            let n = durations.len();
            let mut g = CallGraph::new();
            let ids: Vec<_> = durations
                .iter()
                .enumerate()
                .map(|(i, &ms)| g.add(func(format!("f{i}"), ms)))
                .collect();
            let mut e = 0;
            let mut has_nested_parent = vec![false; n];
            let mut has_async_parent = vec![false; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if edges[e] {
                        // Respect the platform's constraint: a node has
                        // either async parents or one nested parent.
                        let nested = kinds[e] && !has_async_parent[j] && !has_nested_parent[j];
                        if nested {
                            g.link(ids[i], ids[j], CallKind::Nested);
                            has_nested_parent[j] = true;
                        } else if !has_nested_parent[j] {
                            g.link(ids[i], ids[j], CallKind::Async);
                            has_async_parent[j] = true;
                        }
                    }
                    e += 1;
                }
            }
            (g, durations)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn critical_path_bounded((g, durations) in arb_dag()) {
        let total: u64 = durations.iter().sum();
        let longest = *durations.iter().max().unwrap();
        let cp = g.critical_path_duration().as_millis();
        prop_assert!(cp >= longest as f64 - 1e-9, "cp {cp} < longest node {longest}");
        prop_assert!(cp <= total as f64 + 1e-9, "cp {cp} > serial total {total}");
    }

    #[test]
    fn topo_order_is_valid((g, _) in arb_dag()) {
        let order = g.topo_order().expect("acyclic by construction");
        prop_assert_eq!(order.len(), g.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in g.ids() {
            for &(child, _) in g.children(id) {
                prop_assert!(pos[&id] < pos[&child]);
            }
        }
    }

    #[test]
    fn solo_schedule_consistent((g, _) in arb_dag()) {
        let t = g.solo_schedule();
        for (i, timing) in t.iter().enumerate() {
            prop_assert!(timing.service_end >= timing.start);
            prop_assert!(timing.completion >= timing.service_end);
            // A child never starts before its gate.
            for &(p, kind) in g.parents(workloads::NodeId(i)) {
                let gate = match kind {
                    CallKind::Async => t[p.0].completion,
                    CallKind::Nested => t[p.0].service_end,
                };
                prop_assert!(timing.start >= gate);
            }
        }
    }

    #[test]
    fn critical_path_nodes_exist((g, _) in arb_dag()) {
        let cp = g.critical_path();
        prop_assert!(!cp.is_empty());
        for id in cp {
            prop_assert!(id.0 < g.len());
        }
    }
}
