//! The scheduling case study in miniature: run the same diurnal workload
//! mix under the Gsight, Pythia(Best-Fit) and Worst-Fit policies and
//! compare function density, utilization and SLA compliance (paper
//! Figs. 11–12).
//!
//! Run with: `cargo run --release -p bench --example cluster_scheduling`

use experiments::fig11_12::{scheduling_run, Policy};
use mlcore::ModelKind;

fn main() {
    println!("running the three policies on the simulated 8-node testbed...\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "policy", "density", "cpu util", "mem util", "SN SLA", "EC SLA"
    );
    for policy in [
        Policy::Gsight(ModelKind::Irfr),
        Policy::Pythia,
        Policy::WorstFit,
    ] {
        let o = scheduling_run(policy, true, 11);
        println!(
            "{:<14} {:>9.3} {:>8.1}% {:>8.1}% {:>7.1}% {:>7.1}%",
            policy.name(),
            o.report.density_cdf().mean(),
            100.0 * o.report.cpu_util_cdf().mean(),
            100.0 * o.report.memory_util_cdf().mean(),
            100.0
                * o.report
                    .sla_satisfaction(o.sn_idx, workloads::socialnetwork::SLA_P99_MS, 50),
            100.0
                * o.report
                    .sla_satisfaction(o.ec_idx, workloads::ecommerce::SLA_P99_MS, 50),
        );
    }
    println!(
        "\npaper shape: Gsight packs ~18.8% denser than Pythia and ~48.5% denser\n\
         than Worst Fit while holding the SLAs ~95% of the time."
    );
}
