//! Explore the contention model directly: place a sensitive victim on a
//! socket, sweep corunner intensity, and watch the slowdown decomposition
//! (CPU timesharing, memory-bandwidth pressure, LLC squeeze) plus the
//! synthesized microarchitecture counters respond.
//!
//! Run with: `cargo run --release -p bench --example interference_explorer`

use cluster::microarch::{synthesize, MicroarchBaseline, MicroarchParams};
use cluster::{Boundedness, Demand, InstanceLoad, Sensitivity, ServerSpec, ServerState};
use metricsd::Metric;
use simcore::SimRng;

fn main() {
    let spec = ServerSpec::paper_node(); // 10 cores / 25 MB LLC / 68 GB/s per socket
    let victim_load = InstanceLoad {
        demand: Demand::new(1.0, 16.0, 4.0, 0.0, 10.0, 0.4),
        bounded: Boundedness::new(0.9, 0.0, 0.1),
        sens: Sensitivity::new(2.2, 2.5, 0.6),
        socket: 0,
    };
    let base = MicroarchBaseline {
        ipc: 0.9,
        l3_mpki: 6.0,
        ..MicroarchBaseline::generic()
    };
    let params = MicroarchParams::noiseless();
    let mut rng = SimRng::new(1);

    println!("victim: get-followers-like (membw sens 2.2, LLC sens 2.5)");
    println!(
        "{:>9} {:>10} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "corunners", "slowdown", "cpuX", "bw-press", "llc-sqz", "IPC", "L3 MPKI", "ctx/s"
    );
    for n_corunners in 0..=4 {
        let mut server = ServerState::new(spec.clone());
        server.add(victim_load);
        for _ in 0..n_corunners {
            // Each corunner: half a matmul's worth of pressure.
            server.add(InstanceLoad {
                demand: Demand::new(4.0, 30.0, 12.0, 0.0, 0.0, 1.0),
                bounded: Boundedness::cpu_bound(),
                sens: Sensitivity::new(1.5, 1.5, 0.5),
                socket: 0,
            });
        }
        let ic = server.contention().instance(&victim_load);
        let m = synthesize(
            &base,
            &victim_load,
            &ic,
            spec.base_freq_ghz,
            server.cpu_utilization(),
            &params,
            &mut rng,
        );
        println!(
            "{:>9} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2} {:>9.1} {:>9.0}",
            n_corunners,
            ic.slowdown,
            ic.cpu_stretch,
            ic.membw_pressure,
            ic.llc_squeeze,
            m.get(Metric::Ipc),
            m.get(Metric::L3Mpki),
            m.get(Metric::ContextSwitches),
        );
    }
    println!(
        "\neach added corunner raises bandwidth pressure and squeezes the victim's\n\
         cache footprint; past the core count, timesharing multiplies in as well."
    );
}
