//! Quickstart: the whole Gsight pipeline in one file.
//!
//! 1. Profile two workloads solo (the only per-workload measurement Gsight
//!    needs).
//! 2. Generate a small labeled corpus by colocating them at random
//!    placements on the simulated 8-node testbed.
//! 3. Bootstrap an IRFR predictor on the corpus.
//! 4. Ask the predictor about two hypothetical placements of a new
//!    colocation — packed vs separated — and compare with the simulator's
//!    ground truth.
//!
//! Run with: `cargo run --release -p bench --example quickstart`

use cluster::ClusterConfig;
use experiments::corpus::{run_colocation, ColoSetup, ProfileBook};
use gsight::{GsightConfig, GsightPredictor, QosTarget, Scenario};
use simcore::rng::seed_stream;
use simcore::{SimRng, SimTime};
use std::sync::Arc;

fn main() {
    let seed = 42;
    let cluster = ClusterConfig::paper_testbed();

    // ---- 1. solo-run profiling ----
    println!("profiling workloads solo (dedicated node, 1 Hz metrics)...");
    let mut book = ProfileBook::new();
    book.add(
        &workloads::socialnetwork::message_posting(),
        20.0,
        seed,
        true,
    );
    book.add(
        &workloads::functionbench::matrix_multiplication(),
        0.0,
        seed,
        true,
    );
    let sn = book.get("social-network", 20.0);
    let mm = book.get("matrix-multiplication", 0.0);
    println!(
        "  social-network: solo IPC {:.2}, solo p99 {:.1} ms",
        sn.solo_ipc, sn.solo_p99_ms
    );
    println!("  matmul:         solo JCT {:.0} s", mm.solo_jct_s);

    // ---- 2. labeled corpus from random colocations ----
    println!("\ngenerating a labeled corpus (120 colocation runs)...");
    let mut rng = SimRng::new(seed);
    let mut samples: Vec<(Scenario, f64)> = Vec::new();
    for i in 0..120 {
        // Half the corpus uses fully packed placements (like the queries
        // below), half uses per-function random spread.
        let sn_placement: Vec<usize> = if rng.chance(0.5) {
            vec![rng.index(2); 9]
        } else {
            (0..9).map(|_| rng.index(2)).collect()
        };
        let mm_server = rng.index(2);
        let target = ColoSetup {
            placement: sn_placement,
            qps: 20.0,
            start_delay: SimTime::ZERO,
            pw: Arc::clone(&sn),
        };
        let corun = ColoSetup::packed(Arc::clone(&mm), mm_server);
        let out = run_colocation(
            &cluster,
            &[target, corun],
            SimTime::from_secs(20.0),
            seed_stream(seed, i),
        );
        samples.push((out.scenario, out.ipc));
    }

    // ---- 3. train the predictor ----
    let mut predictor = GsightPredictor::new(GsightConfig::paper(QosTarget::Ipc, seed));
    predictor.bootstrap(&samples);
    println!(
        "trained IRFR on {} samples ({} feature dims)",
        predictor.samples_seen(),
        predictor.feature_dim()
    );

    // ---- 4. what-if: packed vs separated placement ----
    println!("\nwhat-if analysis for a new colocation:");
    for (label, sn_server, mm_server) in [
        ("packed (same server)", 0usize, 0usize),
        ("separated            ", 0, 1),
    ] {
        let target = ColoSetup {
            placement: vec![sn_server; 9],
            qps: 20.0,
            start_delay: SimTime::ZERO,
            pw: Arc::clone(&sn),
        };
        let corun = ColoSetup::packed(Arc::clone(&mm), mm_server);
        let scenario = Scenario::new(
            target.as_colo(),
            vec![corun.as_colo()],
            cluster.num_servers(),
        );
        let predicted = predictor.predict(&scenario);
        let actual = run_colocation(
            &cluster,
            &[target, corun],
            SimTime::from_secs(20.0),
            seed ^ 0xABCD,
        )
        .ipc;
        println!(
            "  {label}: predicted IPC {predicted:.3}, simulated IPC {actual:.3} (error {:.1}%)",
            100.0 * (predicted - actual).abs() / actual
        );
    }
    println!(
        "\nthe packed placement predicts (and measures) lower IPC — that is partial interference."
    );
}
