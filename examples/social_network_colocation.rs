//! Reproduce Observation 2 interactively: the *same* corunner colocated
//! with different functions of the social network causes wildly different
//! end-to-end damage, depending on the interfered function's sensitivity
//! and its position on the call path.
//!
//! Run with: `cargo run --release -p bench --example social_network_colocation`

use experiments::corpus::ProfileBook;
use experiments::fig4::{run_condition, Condition};
use workloads::socialnetwork::FUNCTION_NAMES;

fn main() {
    let seed = 7;
    let mut book = ProfileBook::new();
    book.add(
        &workloads::socialnetwork::message_posting(),
        40.0,
        seed,
        true,
    );
    book.add(
        &workloads::functionbench::matrix_multiplication(),
        0.0,
        seed,
        true,
    );

    let w = workloads::socialnetwork::message_posting();
    let critical = w.graph.critical_path();

    println!("baseline (no corunner):");
    let base = run_condition(
        &book,
        "matrix-multiplication",
        0,
        Condition::Baseline,
        40.0,
        true,
        seed,
    );
    println!("  e2e p99 {:.1} ms, IPC {:.2}\n", base.e2e_p99_ms, base.ipc);

    println!("colocating matmul with each function in turn:");
    println!(
        "{:<4} {:<22} {:>10} {:>8} {:>10}",
        "fn", "name", "p99 (ms)", "IPC", "critical?"
    );
    for (victim, name) in FUNCTION_NAMES.iter().enumerate() {
        let r = run_condition(
            &book,
            "matrix-multiplication",
            victim,
            Condition::Interfered,
            40.0,
            true,
            seed,
        );
        let is_critical = critical.contains(&workloads::NodeId(victim));
        println!(
            "{:<4} {:<22} {:>10.1} {:>8.2} {:>10}",
            victim + 1,
            name,
            r.e2e_p99_ms,
            r.ipc,
            if is_critical { "yes" } else { "no" }
        );
    }
    println!(
        "\ninterference on the critical path ({}) hurts end-to-end latency far more\n\
         than the same interference on non-critical branches — Observation 2.",
        critical
            .iter()
            .map(|id| (id.0 + 1).to_string())
            .collect::<Vec<_>>()
            .join("->")
    );
}
