//! Trace explorer: record a fully traced simulation and walk the span tree.
//!
//! Runs the Fig. 4 hotspot setup (all nine social-network functions on one
//! 4-socket server, a matmul corunner sharing the victim's socket) with
//! request tracing and telemetry on, then:
//!
//! 1. summarises spans per category (gateway / queue / cold / phase / wait /
//!    task / request);
//! 2. prints the slowest end-to-end requests and the full span tree of the
//!    worst one — the queue-wait growth at the interfered function is
//!    visible directly;
//! 3. dumps the telemetry registry;
//! 4. optionally writes the Chrome trace JSON (load it in Perfetto or
//!    `chrome://tracing`).
//!
//! Run with:
//! `cargo run --release -p bench --example trace_explorer [-- out.trace.json]`

use obs::{Obs, SpanRecord};
use platform::scale::PlacementDecision;
use platform::{ArrivalSpec, Deployment, PlatformConfig, Simulation};
use simcore::table::{fnum, TextTable};
use simcore::{SimRng, SimTime};
use std::collections::BTreeMap;
use workloads::loadgen::poisson_arrivals;

fn main() {
    let out_path = std::env::args().nth(1);
    let seed = 42;
    let window = SimTime::from_secs(20.0);

    // ---- traced hotspot run (Fig. 4 shape: victim ① on socket 0) ----
    let mut config = PlatformConfig::paper_testbed(seed);
    config.cluster = cluster::ClusterConfig::homogeneous(1, cluster::ServerSpec::paper_node());
    let mut sim = Simulation::new(config);
    sim.set_obs(Obs::recording());
    let mut rng = SimRng::new(seed);

    let sn = workloads::socialnetwork::message_posting();
    let mut rr = 0usize;
    let placement: Vec<Vec<PlacementDecision>> = (0..9)
        .map(|node| {
            let socket = if node == 0 {
                0
            } else {
                rr += 1;
                1 + (rr - 1) % 3
            };
            vec![PlacementDecision { server: 0, socket }]
        })
        .collect();
    sim.deploy(Deployment {
        workload: sn,
        placement,
        arrivals: ArrivalSpec::OpenLoop(poisson_arrivals(40.0, window, &mut rng)),
    });
    let mm = workloads::functionbench::matrix_multiplication();
    let submissions: Vec<SimTime> = (0..4).map(|k| SimTime::from_secs(k as f64 * 5.0)).collect();
    sim.deploy(Deployment {
        workload: mm,
        placement: vec![vec![PlacementDecision {
            server: 0,
            socket: 0,
        }]],
        arrivals: ArrivalSpec::Jobs(submissions),
    });
    println!("running 20 s of interfered social-network traffic, fully traced...\n");
    sim.run_until(window);
    let obs = sim.take_obs();
    let sink = obs.memory_sink().expect("recording sink");
    let spans = sink.spans();

    // ---- 1. per-category summary ----
    let mut by_cat: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for s in spans {
        let e = by_cat.entry(s.cat).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.end.since(s.start).as_millis();
    }
    let mut t = TextTable::new(vec!["category", "spans", "total ms", "mean ms"]);
    for (cat, (n, total)) in &by_cat {
        t.row(vec![
            cat.to_string(),
            n.to_string(),
            fnum(*total, 1),
            fnum(total / *n as f64, 3),
        ]);
    }
    println!("span categories\n{}", t.render());

    // ---- 2. slowest requests + span tree of the worst ----
    let mut requests: Vec<&SpanRecord> = spans.iter().filter(|s| s.cat == "request").collect();
    requests.sort_by(|a, b| {
        let (da, db) = (a.end.since(a.start), b.end.since(b.start));
        db.cmp(&da)
    });
    println!("slowest requests (of {} completed):", requests.len());
    for r in requests.iter().take(5) {
        println!(
            "  req {:>5}  {}  e2e {:.2} ms",
            r.track.pid,
            r.name,
            r.end.since(r.start).as_millis()
        );
    }
    if let Some(worst) = requests.first() {
        println!("\nspan tree of req {} (worst e2e):", worst.track.pid);
        let mut tree: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.track.pid == worst.track.pid)
            .collect();
        tree.sort_by_key(|s| (s.track.tid, s.start, std::cmp::Reverse(s.end)));
        for s in tree {
            // Lane 0 is the request root; lane n+1 is call-graph node n.
            let indent = if s.track.tid == 0 { 0 } else { 1 } + (s.cat != "task") as usize;
            println!(
                "  {}[{:>9.3} ms .. {:>9.3} ms] {:8} {}",
                "    ".repeat(indent),
                s.start.as_millis(),
                s.end.as_millis(),
                s.cat,
                s.name
            );
        }
    }

    // ---- 3. telemetry registry ----
    let telemetry = obs.telemetry.as_ref().expect("telemetry");
    println!("\ntelemetry (CSV dump):\n{}", telemetry.to_csv());

    // ---- 4. optional Chrome trace export ----
    match out_path {
        Some(path) => {
            std::fs::write(&path, sink.chrome_trace_json()).expect("write trace");
            println!("chrome trace -> {path} (load in Perfetto / chrome://tracing)");
        }
        None => println!(
            "pass an output path to write the Chrome trace, e.g. \
             `cargo run -p bench --example trace_explorer -- out.trace.json`"
        ),
    }
}
