//! Serial-equivalence conformance suite for the sharded event engine.
//!
//! The determinism contract under test: for any seed, any shard count in
//! {1, 2, 4, 8}, any worker-thread count in {1, 2, 4}, with fault
//! injection on or off, the sharded engine must reproduce the retained
//! serial engine **bit-for-bit** in every output a run produces — the
//! rendered `RunReport`, the telemetry snapshot stream, the fault log
//! (JSONL and golden summary forms), and the event journal's byte stream
//! after the per-shard buffers merge. Threading must additionally be
//! unobservable in the barrier-protocol counters themselves, which also
//! satisfy the protocol invariants (`min_slack_us >= 0`, truncations =
//! `crossed - published >= 0`). Equivalence is verified by comparison,
//! never asserted by construction.
//!
//! Also covered: resuming a torn journal that a 4-shard run wrote (the
//! resume path re-executes serially, so this crosses engines), and the
//! structural consistency of the per-shard checkpoint records.

use experiments::fault_sweep::{chaos_run_scaled, SweepPoint};
use experiments::journal_runs::{
    fault_sweep_spec, resume_bytes, truncate_bytes, CHECKPOINT_EVERY_US,
};
use obs::journal::{
    check_invariants, read_journal, shard_checkpoint_violations, JournalEvent, MemoryJournal,
};
use obs::Obs;

const QUICK: bool = true;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const FAULTS_OFF: SweepPoint = SweepPoint {
    crash_per_min: 0.0,
    slowdown_per_min: 0.0,
};
const FAULTS_ON: SweepPoint = SweepPoint {
    crash_per_min: 2.0,
    slowdown_per_min: 4.0,
};

/// Every byte-stable output of one journaled chaos run.
#[derive(PartialEq)]
struct RunOutput {
    report_json: String,
    telemetry_jsonl: String,
    faults_jsonl: String,
    fault_summary: String,
    journal: Vec<u8>,
    events_processed: u64,
    barrier: Option<simcore::BarrierStats>,
}

fn journaled_scaled(
    point: SweepPoint,
    seed: u64,
    shards: Option<usize>,
    threads: usize,
    scale: usize,
) -> RunOutput {
    let spec = fault_sweep_spec(point, seed, QUICK);
    let journal = MemoryJournal::in_memory(&spec, Some(CHECKPOINT_EVERY_US));
    let bundle = Obs::telemetry_only()
        .with_fault_log()
        .with_journal(Box::new(journal));
    let (out, post) = chaos_run_scaled(point, seed, QUICK, bundle, shards, threads, scale);
    RunOutput {
        report_json: out.report.render_json(),
        telemetry_jsonl: post
            .telemetry
            .as_ref()
            .map(|t| t.to_jsonl())
            .unwrap_or_default(),
        faults_jsonl: out.faults.to_jsonl(),
        fault_summary: out.faults.summary(),
        journal: post
            .journal
            .as_ref()
            .and_then(|j| j.as_any().downcast_ref::<MemoryJournal>())
            .map(|j| j.bytes().to_vec())
            .expect("in-memory journal survives the run"),
        events_processed: out.events_processed,
        barrier: out.barrier,
    }
}

fn journaled(point: SweepPoint, seed: u64, shards: Option<usize>, threads: usize) -> RunOutput {
    journaled_scaled(point, seed, shards, threads, 1)
}

fn assert_output_matches(got: &RunOutput, reference: &RunOutput, ctx: &str) {
    assert_eq!(
        got.report_json, reference.report_json,
        "{ctx}: report JSON diverged from serial"
    );
    assert_eq!(
        got.telemetry_jsonl, reference.telemetry_jsonl,
        "{ctx}: telemetry stream diverged from serial"
    );
    assert_eq!(
        got.faults_jsonl, reference.faults_jsonl,
        "{ctx}: fault log diverged from serial"
    );
    assert_eq!(
        got.fault_summary, reference.fault_summary,
        "{ctx}: fault summary diverged from serial"
    );
    assert_eq!(
        got.journal, reference.journal,
        "{ctx}: merged journal bytes diverged from serial"
    );
    assert_eq!(
        got.events_processed, reference.events_processed,
        "{ctx}: event counts diverged"
    );
}

/// One (seed, point): a serial reference run, then every shards × threads
/// combination byte-compared against it. The barrier counters must satisfy
/// the protocol invariants and be bit-equal across thread counts at each
/// shard count — thread scheduling must be unobservable even in the
/// protocol's own bookkeeping.
fn assert_matrix_matches_serial(seed: u64, point: SweepPoint) {
    let reference = journaled(point, seed, None, 1);
    for k in SHARD_COUNTS {
        let mut single_threaded_stats = None;
        for t in THREAD_COUNTS {
            let got = journaled(point, seed, Some(k), t);
            let ctx = format!("seed {seed} point {point:?} shards {k} threads {t}");
            assert_output_matches(&got, &reference, &ctx);
            let stats = got.barrier.expect("sharded runs report barrier stats");
            assert!(stats.epochs > 0, "{ctx}: no epochs opened");
            assert!(
                stats.windows >= stats.epochs,
                "{ctx}: every epoch serves at least one window (epochs {}, windows {})",
                stats.epochs,
                stats.windows
            );
            assert_eq!(
                stats.delivered, got.events_processed,
                "{ctx}: every dispatched event passes through a window"
            );
            assert_eq!(
                stats.width_hist.iter().sum::<u64>(),
                stats.epochs,
                "{ctx}: each epoch lands in exactly one width bucket"
            );
            assert!(
                stats.min_slack_us >= 0,
                "{ctx}: a cross-shard event beat its sender's epoch close                  (min_slack_us = {})",
                stats.min_slack_us
            );
            assert!(
                stats.published <= stats.crossed,
                "{ctx}: published {} exceeds crossed {} (truncations =                  crossed - published must be non-negative)",
                stats.published,
                stats.crossed
            );
            match single_threaded_stats {
                None => single_threaded_stats = Some(stats),
                Some(s) => assert_eq!(
                    stats, s,
                    "{ctx}: barrier counters diverged across thread counts"
                ),
            }
        }
    }
}

/// 20 seeds × shards {1,2,4,8} × threads {1,2,4}, fault injection OFF:
/// every sharded run — single-threaded or on the worker pool — reproduces
/// the serial run byte-for-byte in every output.
#[test]
fn sharded_matches_serial_twenty_seeds_faults_off() {
    for seed in 0..20u64 {
        assert_matrix_matches_serial(seed, FAULTS_OFF);
    }
}

/// 20 seeds × shards {1,2,4,8} × threads {1,2,4}, fault injection ON:
/// crashes, slowdowns, OOM kills, cold-start storms and gateway faults all
/// land identically regardless of partition or thread count.
#[test]
fn sharded_matches_serial_twenty_seeds_faults_on() {
    for seed in 0..20u64 {
        assert_matrix_matches_serial(seed, FAULTS_ON);
    }
}

/// The 1024-server leg of the scaling story: serial reference vs the
/// threaded 8-shard engine on a 128× scaled testbed, byte-compared across
/// every output. Too heavy for the default suite — the nightly TSan
/// conformance workflow runs it explicitly via `--ignored`.
#[test]
#[ignore = "1024-server leg; run explicitly (nightly TSan workflow does)"]
fn sharded_matches_serial_at_1024_servers() {
    let seed = 42u64;
    let scale = 128usize; // paper testbed is 8 servers; 128x = 1024.
    let reference = journaled_scaled(FAULTS_OFF, seed, None, 1, scale);
    let threaded = journaled_scaled(FAULTS_OFF, seed, Some(8), 4, scale);
    assert_output_matches(&threaded, &reference, "1024 servers, 8 shards, 4 threads");
    let stats = threaded.barrier.expect("sharded run reports barrier stats");
    assert!(stats.epochs > 0);
    assert!(
        stats.events_per_epoch() >= 5.0,
        "adaptive lookahead should batch events per rendezvous at scale                  (events/epoch = {:.1})",
        stats.events_per_epoch()
    );
}

/// A journal written by a 4-shard run parses strictly, satisfies every
/// ordering invariant after the barrier merges, and — cut mid-record —
/// resumes through the (serial) re-execution path into the bit-identical
/// uninterrupted journal. Resume crossing engines is the strongest form of
/// the contract: the torn sharded prefix verifies record-for-record
/// against a serial rerun.
#[test]
fn torn_journal_from_sharded_run_resumes_bit_identically() {
    let seed = 42u64;
    let sharded = journaled(FAULTS_ON, seed, Some(4), 4);

    let parsed = read_journal(&sharded.journal).expect("strict parse");
    assert!(parsed.truncated.is_none());
    let violations = check_invariants(&parsed.records);
    assert!(
        violations.is_empty(),
        "4-shard journal violates ordering invariants:\n  {}",
        violations.join("\n  ")
    );

    let torn = truncate_bytes(&sharded.journal, 0.6);
    assert!(torn.len() < sharded.journal.len());
    let resumed = resume_bytes(&torn).expect("resume from sharded torn tail");
    assert!(resumed.was_truncated);
    assert!(resumed.verified_records > 0);
    assert_eq!(
        resumed.full_journal, sharded.journal,
        "resumed journal must byte-match the uninterrupted 4-shard journal"
    );
    assert_eq!(resumed.artifacts.report_json, sharded.report_json);
    assert_eq!(resumed.artifacts.faults_jsonl, sharded.faults_jsonl);
    assert_eq!(resumed.artifacts.fault_summary, sharded.fault_summary);
}

/// The per-shard checkpoint records a sharded run emits are structurally
/// consistent: every checkpoint instant carries one slice per shard in
/// shard order, the server ranges partition the cluster, and the per-shard
/// pending-event counts sum to the journal's partition-independent
/// checkpoint totals.
#[test]
fn shard_checkpoints_partition_the_cluster_and_sum_to_journal_totals() {
    use platform::scale::PlacementDecision;
    use platform::{ArrivalSpec, Deployment, PlatformConfig, Simulation};
    use simcore::SimTime;
    use workloads::loadgen::uniform_arrivals;

    let seed = 7u64;
    let shards = 4usize;
    let horizon = SimTime::from_secs(30.0);
    let mut sim = Simulation::new(PlatformConfig::paper_testbed(seed));
    sim.set_shards(shards);
    let spec = fault_sweep_spec(FAULTS_ON, seed, QUICK);
    let journal = MemoryJournal::in_memory(&spec, Some(CHECKPOINT_EVERY_US));
    sim.set_obs(
        Obs::telemetry_only()
            .with_fault_log()
            .with_journal(Box::new(journal)),
    );
    let num_servers = sim.servers().len();
    let workload = workloads::socialnetwork::message_posting();
    let placement: Vec<Vec<PlacementDecision>> = workload
        .graph
        .ids()
        .map(|id| {
            vec![PlacementDecision {
                server: id.0 % num_servers,
                socket: 0,
            }]
        })
        .collect();
    sim.deploy(Deployment {
        workload,
        placement,
        arrivals: ArrivalSpec::OpenLoop(uniform_arrivals(20.0, horizon)),
    });
    sim.set_faults(experiments::fault_sweep::sweep_fault_config(
        FAULTS_ON, seed,
    ));
    sim.run_until(horizon);

    let records = sim.shard_checkpoints().to_vec();
    assert!(
        !records.is_empty(),
        "a 30 s run at 10 s checkpoint cadence must emit shard checkpoints"
    );
    let bundle = sim.take_obs();
    let bytes = bundle
        .journal
        .as_ref()
        .and_then(|j| j.as_any().downcast_ref::<MemoryJournal>())
        .map(|j| j.bytes().to_vec())
        .expect("journal bytes");
    let parsed = read_journal(&bytes).expect("strict parse");
    let journal_pending: Vec<(u64, u64)> = parsed
        .records
        .iter()
        .filter_map(|r| match &r.event {
            JournalEvent::Checkpoint(c) => Some((c.at_us, c.pending_events)),
            _ => None,
        })
        .collect();
    assert!(!journal_pending.is_empty());
    let violations = shard_checkpoint_violations(
        &records,
        shards as u32,
        num_servers as u32,
        &journal_pending,
    );
    assert!(
        violations.is_empty(),
        "shard checkpoint inconsistencies:\n  {}",
        violations.join("\n  ")
    );
}
