//! Experiment-harness integration: the registry covers every paper
//! artifact, and representative experiments run end-to-end in quick mode
//! producing non-degenerate tables.
//!
//! (The heavier experiments — fig3/fig9/fig10/fig11/fig13 — are exercised
//! by their own module tests; re-running all of them here would double the
//! suite's cost for no extra coverage.)

use experiments::{all_experiments, ExperimentResult, RunOpts};

#[test]
fn registry_covers_every_paper_artifact() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
    for expected in [
        "fig3", "fig4", "fig5", "fig7", "table3", "fig8", "fig9", "fig10", "fig13", "fig11",
        "fig14",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
}

fn assert_result_shape(r: &ExperimentResult, min_tables: usize) {
    assert!(!r.id.is_empty());
    assert!(
        r.tables.len() >= min_tables,
        "{}: expected >= {min_tables} tables, got {}",
        r.id,
        r.tables.len()
    );
    for t in &r.tables {
        assert!(t.lines().count() >= 3, "{}: table too small:\n{t}", r.id);
    }
    let rendered = r.render();
    assert!(rendered.contains(r.id));
}

#[test]
fn table3_quick_run_produces_full_table() {
    let exps = all_experiments();
    let e = exps.iter().find(|e| e.id == "table3").unwrap();
    let r = (e.run)(&RunOpts::quick());
    assert_result_shape(&r, 1);
    // All 19 candidate metrics appear.
    assert!(r.tables[0].lines().count() >= 20);
    assert!(r.tables[0].contains("IPC"));
    assert!(r.tables[0].contains("Disk IO"));
}

#[test]
fn fig8_quick_run_produces_importances() {
    let exps = all_experiments();
    let e = exps.iter().find(|e| e.id == "fig8").unwrap();
    let r = (e.run)(&RunOpts::quick());
    assert_result_shape(&r, 1);
    assert!(r.tables[0].lines().count() >= 17, "16 metrics + header");
}

#[test]
fn fig14_quick_run_measures_overheads() {
    let exps = all_experiments();
    let e = exps.iter().find(|e| e.id == "fig14").unwrap();
    let r = (e.run)(&RunOpts::quick());
    assert_result_shape(&r, 2);
    let joined = r.notes.join("\n");
    assert!(joined.contains("inference"), "notes: {joined}");
    assert!(joined.contains("instance starting"), "notes: {joined}");
}

#[test]
fn fig7_quick_run_finds_threshold() {
    let exps = all_experiments();
    let e = exps.iter().find(|e| e.id == "fig7").unwrap();
    let r = (e.run)(&RunOpts::quick());
    assert_result_shape(&r, 1);
    let joined = r.notes.join("\n");
    assert!(
        joined.contains("IPC threshold"),
        "expected a derived SLA threshold, notes: {joined}"
    );
}

#[test]
fn fig4_quick_run_shows_restoration() {
    let exps = all_experiments();
    let e = exps.iter().find(|e| e.id == "fig4").unwrap();
    let r = (e.run)(&RunOpts::quick());
    // Two panels, each a full 9-function table.
    assert_result_shape(&r, 2);
    for t in &r.tables {
        assert!(t.lines().count() >= 12, "panel table incomplete:\n{t}");
    }
}
