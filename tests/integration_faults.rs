//! Fault-injection integration: request-outcome conservation, exact
//! replayability, bounded backoff, slot release after timeouts, and
//! crash-drain rescheduling — checked across many seeds, end to end
//! through the platform engine with the chaos layer enabled.

use platform::engine::ScaleConfig;
use platform::scale::PlacementDecision;
use platform::{ArrivalSpec, Deployment, Outcome, PlatformConfig, ResilienceConfig, Simulation};
use simcore::rng::seed_stream;
use simcore::SimTime;
use std::collections::BTreeMap;
use workloads::loadgen::uniform_arrivals;

const MAX_RETRIES: u32 = 3;

/// A hostile 20 s mix (crashes, slowdowns, OOM-kills, cold storms, gateway
/// drops, predictor outages) followed by a generous drain window so every
/// request reaches a terminal outcome. Deterministic in `seed`.
fn chaotic_sim(seed: u64) -> Simulation {
    let arrivals_end = SimTime::from_secs(20.0);
    let mut sim = Simulation::new(PlatformConfig::paper_testbed(seed));
    sim.set_obs(obs::Obs::telemetry_only().with_fault_log());
    let n = sim.servers().len();
    for (workload, rps) in [
        (workloads::socialnetwork::message_posting(), 20.0),
        (workloads::ecommerce::browse_and_buy(), 10.0),
    ] {
        let placement: Vec<Vec<PlacementDecision>> = workload
            .graph
            .ids()
            .map(|id| {
                vec![PlacementDecision {
                    server: id.0 % n,
                    socket: 0,
                }]
            })
            .collect();
        sim.deploy(Deployment {
            workload,
            placement,
            arrivals: ArrivalSpec::OpenLoop(uniform_arrivals(rps, arrivals_end)),
        });
    }
    sim.set_placer(
        Box::new(baselines::WorstFit),
        ScaleConfig {
            queue_per_instance: 1.5,
            busy_fraction: 0.75,
            max_instances_per_node: 24,
        },
    );
    sim.set_resilience(ResilienceConfig {
        request_timeout: Some(SimTime::from_secs(8.0)),
        max_retries: MAX_RETRIES,
        backoff_base: SimTime::from_millis(200.0),
        backoff_jitter: 0.5,
        shed_queue_depth: Some(64),
    });
    sim.set_faults(faults::FaultConfig {
        seed: seed_stream(seed, 0xFA),
        server_crash_rate_per_min: 6.0,
        crash_recovery: SimTime::from_secs(5.0),
        slowdown_rate_per_min: 12.0,
        slowdown_factor: 3.0,
        slowdown_duration: SimTime::from_secs(4.0),
        oom_rate_per_min: 6.0,
        cold_storm_rate_per_min: 3.0,
        cold_storm_duration: SimTime::from_secs(2.0),
        gateway_drop_prob: 0.01,
        gateway_jitter_max: SimTime::from_micros(300),
        predictor_outage_rate_per_min: 2.0,
        predictor_outage_duration: SimTime::from_secs(5.0),
    });
    sim.run_until(SimTime::from_secs(120.0));
    sim
}

/// Satellite 1 (conservation): under heavy chaos, every arrival settles in
/// exactly one of {completed, shed, failed}; nothing is lost, nothing is
/// double-counted.
#[test]
fn every_arrival_settles_exactly_once_across_20_seeds() {
    for seed in 0..20u64 {
        let sim = chaotic_sim(seed);
        let report = sim.report();
        let (mut arrivals, mut completions, mut shed, mut failed) = (0u64, 0u64, 0u64, 0u64);
        let mut latencies = 0u64;
        for w in &report.workloads {
            arrivals += w.arrivals;
            completions += w.completions;
            shed += w.shed;
            failed += w.failed;
            latencies += w.e2e_latencies_ms.len() as u64;
        }
        assert!(arrivals > 0, "seed {seed}: no load generated");
        assert_eq!(
            arrivals,
            completions + shed + failed,
            "seed {seed}: conservation violated"
        );
        // Exactly one latency sample per completion — no double-completion.
        assert_eq!(latencies, completions, "seed {seed}: duplicate completions");
        // Per-request: every observed request carries exactly one terminal
        // outcome, and the per-outcome counts match the series totals.
        let (mut by_c, mut by_s, mut by_f) = (0u64, 0u64, 0u64);
        for req in 0..sim.request_count() as u64 {
            match sim
                .request_outcome(req)
                .unwrap_or_else(|| panic!("seed {seed}: request {req} never settled"))
            {
                Outcome::Completed => by_c += 1,
                Outcome::Shed => by_s += 1,
                Outcome::Failed => by_f += 1,
            }
        }
        assert_eq!(
            (by_c, by_s, by_f),
            (completions, shed, failed),
            "seed {seed}"
        );
    }
}

/// Satellite 1 (replayability): the same seed reproduces the entire run —
/// fault log, telemetry, and report — byte for byte.
#[test]
fn same_seed_replays_bit_identically() {
    for seed in [3u64, 17] {
        let mut a = chaotic_sim(seed);
        let mut b = chaotic_sim(seed);
        let (oa, ob) = (a.take_obs(), b.take_obs());
        let (fa, fb) = (oa.faults.expect("log"), ob.faults.expect("log"));
        assert!(!fa.records().is_empty(), "seed {seed}: chaos must fire");
        assert_eq!(
            fa.to_jsonl(),
            fb.to_jsonl(),
            "seed {seed}: fault log diverged"
        );
        assert_eq!(
            oa.telemetry.expect("telemetry").to_jsonl(),
            ob.telemetry.expect("telemetry").to_jsonl(),
            "seed {seed}: telemetry diverged"
        );
        assert_eq!(
            a.into_report(),
            b.into_report(),
            "seed {seed}: report diverged"
        );
    }
}

/// Satellite 2 (backoff): per request, retries never exceed the budget and
/// inter-retry delays strictly increase (exponential backoff with a
/// bounded-jitter floor).
#[test]
fn backoff_is_bounded_and_strictly_increasing() {
    let mut saw_multi_retry = false;
    for seed in 0..20u64 {
        let mut sim = chaotic_sim(seed);
        let log = sim.take_obs().faults.expect("log");
        let mut per_req: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for r in log.records().iter().filter(|r| r.kind == "retry") {
            per_req.entry(r.target).or_default().push(r.value);
        }
        for (req, delays) in &per_req {
            assert!(
                delays.len() <= MAX_RETRIES as usize,
                "seed {seed}: request {req} retried {} times (budget {MAX_RETRIES})",
                delays.len()
            );
            for w in delays.windows(2) {
                assert!(
                    w[1] > w[0],
                    "seed {seed}: request {req} backoff not strictly increasing: {delays:?}"
                );
            }
            saw_multi_retry |= delays.len() >= 2;
        }
    }
    assert!(
        saw_multi_retry,
        "no request ever retried twice across 20 chaotic seeds — scenario too tame to test backoff growth"
    );
}

/// Satellite 2 (timeouts): a timed-out request releases its instance slot —
/// a later request completes promptly on the same single-concurrency
/// instance instead of queueing behind a ghost.
#[test]
fn timed_out_request_releases_its_instance_slot() {
    let mut sim = Simulation::new(PlatformConfig::small(9));
    let mut w = workloads::functionbench::float_operation();
    {
        let root = w.graph.roots()[0];
        let f = w.graph.func_mut(root);
        f.phases[0].duration = SimTime::from_millis(1500.0);
        f.concurrency = 1;
    }
    let ids: Vec<_> = w.graph.ids().collect();
    let placement = ids
        .iter()
        .map(|_| {
            vec![PlacementDecision {
                server: 0,
                socket: 0,
            }]
        })
        .collect();
    sim.deploy(Deployment {
        workload: w,
        placement,
        // Two simultaneous arrivals: the second queues behind the first and
        // blows its 2 s deadline mid-service. A third arrives much later.
        arrivals: ArrivalSpec::OpenLoop(vec![
            SimTime::from_secs(1.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(10.0),
        ]),
    });
    sim.set_resilience(ResilienceConfig {
        request_timeout: Some(SimTime::from_secs(2.0)),
        max_retries: 0,
        ..Default::default()
    });
    sim.set_obs(obs::Obs::telemetry_only().with_fault_log());
    sim.run_until(SimTime::from_secs(30.0));

    assert_eq!(sim.request_outcome(0), Some(Outcome::Completed));
    assert_eq!(
        sim.request_outcome(1),
        Some(Outcome::Failed),
        "queued request must time out"
    );
    assert_eq!(sim.request_outcome(2), Some(Outcome::Completed));
    let log = sim.take_obs().faults.expect("log");
    assert!(
        log.records()
            .iter()
            .any(|r| r.kind == "timeout" && r.target == 1),
        "timeout must be logged for request 1"
    );
    let ws = &sim.report().workloads[0];
    assert_eq!((ws.completions, ws.failed), (2, 1));
    // If the timed-out request leaked its slot, request 2 would hang (or
    // queue forever); its latency must instead be pure service time.
    assert!(
        ws.e2e_latencies_ms.iter().all(|&ms| ms < 2000.0),
        "completed latencies polluted by a leaked slot: {:?}",
        ws.e2e_latencies_ms
    );
}

// --- crash-drain rescheduling against a trained predictor -----------------

mod drain {
    use cluster::Demand;
    use gsight::{CodingConfig, ColoWorkload, GsightConfig, GsightPredictor, QosTarget, Scenario};
    use metricsd::{FunctionProfile, Metric, MetricVector, ProfileSample, WorkloadProfile};
    use mlcore::ModelKind;
    use sched::placer::SlaSpec;
    use sched::{apply_plan_checked, plan_drain, PlanError, WorkloadEntry};
    use simcore::{SimRng, SimTime};
    use workloads::WorkloadClass;

    const S: usize = 4;

    fn profile(n: usize, ipc: f64) -> WorkloadProfile {
        let mut m = MetricVector::zero();
        m.set(Metric::Ipc, ipc);
        m.set(Metric::L3Mpki, 4.0);
        WorkloadProfile::new(
            "w",
            (0..n)
                .map(|i| {
                    FunctionProfile::new(
                        format!("f{i}"),
                        vec![ProfileSample {
                            at: SimTime::ZERO,
                            metrics: m,
                        }],
                        false,
                    )
                })
                .collect(),
        )
    }

    /// Predictor trained on synthetic ground truth where IPC shrinks with
    /// same-server overlap (same shape as the sched unit-test fixture).
    fn predictor() -> GsightPredictor {
        let config = GsightConfig {
            coding: CodingConfig {
                num_servers: S,
                max_workloads: 3,
            },
            target: QosTarget::Ipc,
            kind: ModelKind::Irfr,
            update_batch: 50,
            seed: 21,
        };
        let mut rng = SimRng::new(22);
        let mut samples = Vec::new();
        for _ in 0..800 {
            let tp: Vec<usize> = (0..2).map(|_| rng.index(S)).collect();
            let op: Vec<usize> = (0..2).map(|_| rng.index(S)).collect();
            let overlap = tp.iter().filter(|s| op.contains(s)).count();
            let y = 2.0 / (1.0 + 0.15 * overlap as f64);
            let mk = |p: Vec<usize>, ipc: f64| {
                ColoWorkload::new(
                    profile(2, ipc),
                    WorkloadClass::LatencySensitive,
                    vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
                    p,
                )
            };
            samples.push((Scenario::new(mk(tp, 2.0), vec![mk(op, 1.0)], S), y));
        }
        let mut p = GsightPredictor::new(config);
        p.bootstrap(&samples);
        p
    }

    fn entry(name: &str, sla: Option<f64>, instances: Vec<(usize, usize)>) -> WorkloadEntry {
        WorkloadEntry {
            name: name.into(),
            class: WorkloadClass::LatencySensitive,
            profile: profile(2, if sla.is_some() { 2.0 } else { 1.0 }),
            demands: vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
            sla: SlaSpec { min_ipc: sla },
            instances,
        }
    }

    fn random_entries(rng: &mut SimRng) -> Vec<WorkloadEntry> {
        vec![
            entry("a", Some(0.5), (0..3).map(|_| (0, rng.index(S))).collect()),
            entry("b", None, (0..3).map(|_| (1, rng.index(S))).collect()),
        ]
    }

    /// Satellite 3: across 20 seeds, draining a crashed server never
    /// migrates anything *onto* the dead server, fully evacuates it, and
    /// the liveness-checked apply accepts the plan.
    #[test]
    fn drain_never_targets_the_dead_server_across_20_seeds() {
        let p = predictor();
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let mut entries = random_entries(&mut rng);
            let dead = rng.index(S);
            let alive: Vec<bool> = (0..S).map(|s| s != dead).collect();
            let plan = plan_drain(&p, &entries, S, &alive);
            for m in &plan.migrations {
                assert_eq!(m.from, dead, "seed {seed}: drained a healthy server");
                assert!(alive[m.to], "seed {seed}: migrated onto the dead server");
            }
            let victims: usize = entries
                .iter()
                .flat_map(|e| &e.instances)
                .filter(|&&(_, s)| s == dead)
                .count();
            assert_eq!(
                plan.migrations.len(),
                victims,
                "seed {seed}: incomplete drain"
            );
            apply_plan_checked(&mut entries, &plan, &alive)
                .unwrap_or_else(|e| panic!("seed {seed}: drain plan rejected: {e}"));
            assert!(
                entries
                    .iter()
                    .all(|e| e.instances.iter().all(|&(_, s)| s != dead)),
                "seed {seed}: instances left on the crashed server"
            );
        }
    }

    /// Satellite 3: a plan computed before a crash is rejected — a dead
    /// migration target is an explicit error, and a stale plan (instances
    /// moved since planning) is rejected without mutating anything.
    #[test]
    fn pre_crash_plans_are_rejected_by_checked_apply() {
        let p = predictor();
        let mut entries = vec![
            entry("a", Some(0.5), vec![(0, 0), (1, 1)]),
            entry("b", None, vec![(0, 0), (1, 2)]),
        ];
        let all_alive = vec![true; S];
        let plan = plan_drain(&p, &entries, S, &{
            let mut a = all_alive.clone();
            a[0] = false;
            a
        });
        assert!(
            !plan.migrations.is_empty(),
            "fixture needs instances on server 0"
        );
        // The crash landscape changed after planning: the plan's first
        // migration target died too.
        let target = plan.migrations[0].to;
        let mut alive = all_alive.clone();
        alive[target] = false;
        let before: Vec<Vec<(usize, usize)>> =
            entries.iter().map(|e| e.instances.clone()).collect();
        assert_eq!(
            apply_plan_checked(&mut entries, &plan, &alive),
            Err(PlanError::DeadTarget { server: target })
        );
        // Stale: applying the same plan twice — the second apply finds the
        // instances already moved off server 0.
        apply_plan_checked(&mut entries, &plan, &all_alive).expect("first apply");
        let err = apply_plan_checked(&mut entries, &plan, &all_alive);
        assert!(
            matches!(err, Err(PlanError::Stale { .. })),
            "re-applying a consumed plan must be stale, got {err:?}"
        );
        // The rejected applies must not have partially mutated state: only
        // the one successful apply's effect is visible.
        let moved: Vec<Vec<(usize, usize)>> = entries.iter().map(|e| e.instances.clone()).collect();
        assert_ne!(before, moved, "successful apply must move instances");
        assert!(
            entries
                .iter()
                .all(|e| e.instances.iter().all(|&(_, s)| s != 0)),
            "server 0 must be evacuated exactly once"
        );
    }

    /// Satellite 4: an empty candidate set (every server dead or full) is a
    /// recoverable error from the binary-search placement, not a panic.
    #[test]
    fn empty_candidate_set_is_an_error_end_to_end() {
        let p = predictor();
        let wl = ColoWorkload::new(
            profile(2, 2.0),
            WorkloadClass::LatencySensitive,
            vec![Demand::new(1.0, 2.0, 4.0, 0.0, 0.0, 0.5); 2],
            vec![0, 1],
        );
        let capacity = cluster::ServerSpec::paper_node().total_capacity();
        let out = sched::binary_search_placement(&p, &wl, &[], S, &[], &[], &capacity, 0.5);
        assert_eq!(out, Err(sched::PlacementError::NoCandidates));
    }
}
