//! Observability integration: tracing must not perturb the simulation, the
//! exported Chrome trace must be well-formed and well-nested, and the
//! `--trace-dir` pipeline must land a Perfetto-loadable artifact on disk
//! that shows the Fig. 4 hotspot signature (queue-wait growth at the
//! interfered function).

use experiments::fig4::{run_condition, run_condition_observed, Condition};
use experiments::{all_experiments, RunOpts};
use obs::json::Json;
use obs::trace::nesting_violations;

/// One traced + one untraced run of the same interfered scenario back a
/// determinism check, a nesting check, and a Chrome-trace schema check
/// (sharing the runs keeps this suite affordable: profiling the book and
/// simulating the 20 s window dominate the cost).
#[test]
fn tracing_preserves_determinism_and_exports_well_formed_spans() {
    let mut book = experiments::corpus::ProfileBook::new();
    book.add(&workloads::socialnetwork::message_posting(), 40.0, 1, true);
    book.add(
        &workloads::functionbench::matrix_multiplication(),
        0.0,
        1,
        true,
    );
    let plain = run_condition(
        &book,
        "matrix-multiplication",
        0,
        Condition::Interfered,
        40.0,
        true,
        7,
    );
    let (observed, obs) = run_condition_observed(
        &book,
        "matrix-multiplication",
        0,
        Condition::Interfered,
        40.0,
        true,
        7,
        true,
    );
    assert_eq!(plain, observed, "recording must not change any measurement");

    let sink = obs.memory_sink().expect("memory sink");
    assert!(!sink.spans().is_empty(), "observed run must record spans");
    assert_eq!(nesting_violations(sink.spans()), Vec::<String>::new());

    let parsed = Json::parse(&sink.chrome_trace_json()).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(events.len() > 100, "only {} events", events.len());
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
        if ph == "X" {
            complete += 1;
            for key in ["name", "cat", "ts", "dur"] {
                assert!(e.get(key).is_some(), "X event missing {key}");
            }
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
    }
    assert_eq!(complete, sink.spans().len());
}

#[test]
fn trace_dir_exports_perfetto_artifact_showing_queue_wait_growth() {
    let dir = std::env::temp_dir().join(format!("gsight_obs_test_{}", std::process::id()));
    let opts = RunOpts {
        quick: true,
        trace_dir: Some(dir.clone()),
        ..RunOpts::default()
    };
    let exps = all_experiments();
    let fig4 = exps.iter().find(|e| e.id == "fig4").unwrap();
    let result = (fig4.run)(&opts);

    // Both panels exported baseline + interfered traces.
    for name in [
        "fig4_a_baseline.trace.json",
        "fig4_a_interfered.trace.json",
        "fig4_b_baseline.trace.json",
        "fig4_b_interfered.trace.json",
    ] {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
        let parsed = Json::parse(&text).expect("artifact parses as JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    // The headline metrics record the hotspot: interfered victim p99 above
    // baseline, and a queue-wait p95 measured from telemetry.
    let metric = |name: &str| {
        result
            .metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    assert!(metric("a.victim_p99_interfered_ms") > metric("a.victim_p99_baseline_ms"));
    assert!(metric("a.queue_wait_p95_interfered_ms") > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}
