//! End-to-end pipeline integration: solo profiling → corpus generation →
//! predictor training → prediction → incremental refinement, crossing every
//! layer of the workspace (workloads → cluster → platform → gsight →
//! mlcore → experiments).

use baselines::ScenarioPredictor;
use cluster::ClusterConfig;
use experiments::corpus::{generate_group, labeled_for, standard_profile_book, ColoGroup};
use experiments::fig9::{gsight_with, mean_error};
use gsight::QosTarget;
use mlcore::ModelKind;

#[test]
fn profile_train_predict_update_loop() {
    let book = standard_profile_book(0xBEEF, true);
    // Every workload + QPS level is profiled (2 LS × 3 levels + 8 SC/BG).
    assert_eq!(book.len(), 2 * 3 + 8);

    let cluster = ClusterConfig::paper_testbed();
    let train = generate_group(ColoGroup::LsScBg, 60, &book, &cluster, 1, true);
    let test = generate_group(ColoGroup::LsScBg, 20, &book, &cluster, 2, true);
    let train_l = labeled_for(&train, QosTarget::Ipc);
    let test_l = labeled_for(&test, QosTarget::Ipc);
    assert_eq!(train_l.len(), 60);
    assert_eq!(test_l.len(), 20);

    // Offline bootstrap on half, incremental absorption of the rest.
    let mut p = gsight_with(ModelKind::Irfr, QosTarget::Ipc, 3);
    ScenarioPredictor::bootstrap(&mut p, &train_l[..30]);
    let err_bootstrap = mean_error(&p, &test_l);
    ScenarioPredictor::update(&mut p, &train_l[30..]);
    let err_updated = mean_error(&p, &test_l);

    assert!(err_bootstrap.is_finite());
    assert!(
        err_updated < 0.15,
        "end-to-end error too high after updates: {err_updated}"
    );
    // More data must not make things substantially worse.
    assert!(
        err_updated <= err_bootstrap * 1.25,
        "updates hurt: {err_bootstrap} -> {err_updated}"
    );
    assert_eq!(p.samples_seen(), 60);
}

#[test]
fn scenario_labels_reflect_interference_direction() {
    // Zero-interference colocations must label near the solo QoS; packed
    // ones must label strictly worse — the monotonicity the predictor
    // ultimately learns.
    use experiments::corpus::{run_colocation, ColoSetup, ProfileBook};
    use simcore::SimTime;
    use std::sync::Arc;

    let mut book = ProfileBook::new();
    book.add(
        &workloads::functionbench::logistic_regression(),
        0.0,
        5,
        true,
    );
    book.add(
        &workloads::functionbench::matrix_multiplication(),
        0.0,
        5,
        true,
    );
    let cluster = ClusterConfig::paper_testbed();
    let lr = book.get("logistic-regression", 0.0);
    let mm = book.get("matrix-multiplication", 0.0);

    let packed = run_colocation(
        &cluster,
        &[
            ColoSetup::packed(Arc::clone(&lr), 0),
            ColoSetup::packed(Arc::clone(&mm), 0),
        ],
        SimTime::from_secs(30.0),
        7,
    );
    let separated = run_colocation(
        &cluster,
        &[
            ColoSetup::packed(Arc::clone(&lr), 0),
            ColoSetup::packed(Arc::clone(&mm), 3),
        ],
        SimTime::from_secs(30.0),
        7,
    );
    assert!(
        packed.jct_s > separated.jct_s * 1.1,
        "packed JCT {} should exceed separated {}",
        packed.jct_s,
        separated.jct_s
    );
    assert!((separated.jct_s - lr.solo_jct_s).abs() / lr.solo_jct_s < 0.03);
    // The interference classifier agrees with the placements.
    use gsight::{interference_kind, InterferenceKind};
    assert_eq!(
        interference_kind(&packed.scenario.target, &packed.scenario.others[0]),
        InterferenceKind::Full
    );
    assert_eq!(
        interference_kind(&separated.scenario.target, &separated.scenario.others[0]),
        InterferenceKind::Zero
    );
}

#[test]
fn temporal_code_changes_prediction_inputs() {
    use gsight::features::featurize;
    use gsight::CodingConfig;

    let book = {
        let mut b = experiments::corpus::ProfileBook::new();
        b.add(
            &workloads::functionbench::logistic_regression(),
            0.0,
            9,
            true,
        );
        b.add(&workloads::functionbench::kmeans(), 0.0, 9, true);
        b
    };
    let cluster = ClusterConfig::paper_testbed();
    let coding = CodingConfig::paper();
    use experiments::corpus::{run_colocation, ColoSetup};
    use simcore::SimTime;
    let make = |delay_s: f64| {
        let target = ColoSetup::packed(book.get("logistic-regression", 0.0), 0);
        let mut corun = ColoSetup::packed(book.get("kmeans", 0.0), 0);
        corun.start_delay = SimTime::from_secs(delay_s);
        run_colocation(&cluster, &[target, corun], SimTime::from_secs(10.0), 11).scenario
    };
    let x0 = featurize(&make(0.0), &coding);
    let x120 = featurize(&make(120.0), &coding);
    assert_ne!(x0, x120, "start delay must reach the feature vector");
    // They differ exactly in the temporal block.
    let spatial = coding.max_workloads * 2 * coding.num_servers * 16;
    assert_eq!(&x0[..spatial], &x120[..spatial]);
    assert_ne!(&x0[spatial..], &x120[spatial..]);
}
