//! Platform-simulator integration invariants: conservation of requests,
//! agreement between the DAG analysis and the executor, propagation
//! effects, and bit-for-bit determinism across the full stack.

use platform::scale::PlacementDecision;
use platform::{ArrivalSpec, Deployment, PlatformConfig, Simulation};
use simcore::{SimRng, SimTime};
use workloads::loadgen::{poisson_arrivals, uniform_arrivals};

fn place_all(w: &workloads::Workload, server: usize) -> Vec<Vec<PlacementDecision>> {
    (0..w.graph.len())
        .map(|_| vec![PlacementDecision { server, socket: 0 }])
        .collect()
}

#[test]
fn request_conservation() {
    // Every arrival either completes within the horizon or stays in flight;
    // per-function completions never exceed arrivals.
    let mut sim = Simulation::new(PlatformConfig::paper_testbed(1));
    let w = workloads::socialnetwork::message_posting();
    let placement = place_all(&w, 0);
    let mut rng = SimRng::new(2);
    sim.deploy(Deployment {
        workload: w,
        placement,
        arrivals: ArrivalSpec::OpenLoop(poisson_arrivals(30.0, SimTime::from_secs(20.0), &mut rng)),
    });
    sim.run_until(SimTime::from_secs(40.0));
    let s = &sim.report().workloads[0];
    assert!(s.arrivals > 400);
    assert_eq!(s.completions, s.arrivals, "horizon slack lets all finish");
    for f in &s.functions {
        assert!(f.completions <= s.arrivals);
        assert_eq!(f.completions as usize, f.local_latencies_ms.len());
    }
}

#[test]
fn executor_matches_dag_analysis_for_every_workload() {
    // For each catalogued workload: one warm request on an idle cluster
    // must complete in the DAG's solo time plus gateway forwards.
    for w in [
        workloads::socialnetwork::message_posting(),
        workloads::ecommerce::browse_and_buy(),
        workloads::functionbench::feature_generation(),
    ] {
        let expected = w.critical_path_duration().as_millis();
        let edges = 2.0 * w.graph.len() as f64; // generous forward budget
        let mut sim = Simulation::new(PlatformConfig::paper_testbed(3));
        let placement = place_all(&w, 0);
        let name = w.name.clone();
        sim.deploy(Deployment {
            workload: w,
            placement,
            arrivals: ArrivalSpec::OpenLoop(vec![
                SimTime::from_secs(1.0),
                SimTime::from_secs(200.0), // warm request
            ]),
        });
        sim.run_until(SimTime::from_secs(400.0));
        let lat = sim.report().workloads[0].e2e_latencies_ms[1];
        assert!(
            lat >= expected && lat <= expected + 0.4 * edges,
            "{name}: warm latency {lat} vs solo analysis {expected}"
        );
    }
}

#[test]
fn hotspot_throttling_reduces_downstream_arrival_rate() {
    // Saturate the entry function; downstream functions must then see
    // fewer invocations than arrivals (Observation 4's mechanism).
    let mut w = workloads::socialnetwork::message_posting();
    {
        let root = w.graph.roots()[0];
        let f = w.graph.func_mut(root);
        f.concurrency = 1;
        f.phases[0].duration = SimTime::from_millis(50.0); // cap ~20 rps
    }
    let mut sim = Simulation::new(PlatformConfig::paper_testbed(5));
    let placement = place_all(&w, 0);
    sim.deploy(Deployment {
        workload: w,
        placement,
        arrivals: ArrivalSpec::OpenLoop(uniform_arrivals(40.0, SimTime::from_secs(20.0))),
    });
    sim.run_until(SimTime::from_secs(20.0));
    let s = &sim.report().workloads[0];
    let entry_done = s.functions[0].completions;
    assert!(
        (entry_done as f64) < 0.7 * s.arrivals as f64,
        "entry should throttle: {} of {}",
        entry_done,
        s.arrivals
    );
    // Downstream functions can only see what the entry released.
    for f in &s.functions[1..] {
        assert!(f.completions <= entry_done);
    }
}

#[test]
fn whole_stack_determinism() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(PlatformConfig::paper_testbed(seed));
        let w = workloads::ecommerce::browse_and_buy();
        let placement = place_all(&w, 0);
        let mut rng = SimRng::new(seed);
        sim.deploy(Deployment {
            workload: w,
            placement,
            arrivals: ArrivalSpec::OpenLoop(poisson_arrivals(
                25.0,
                SimTime::from_secs(15.0),
                &mut rng,
            )),
        });
        sim.run_until(SimTime::from_secs(30.0));
        let r = sim.report();
        (
            r.workloads[0].e2e_latencies_ms.clone(),
            r.workloads[0].functions[1].metric_samples.clone(),
            r.gateway_forward_ms.clone(),
        )
    };
    assert_eq!(run(42), run(42));
    let (a, _, _) = run(42);
    let (b, _, _) = run(43);
    assert_ne!(a, b, "different seeds should differ");
}

#[test]
fn high_density_population_run() {
    // §1's premise exercised end-to-end: deploy 150 Azure-statistics
    // functions across the 8-node testbed and drive the LS subset; the
    // platform must stay conservative (no lost requests) and the gateway's
    // >120-instance degradation must be visible in forward latencies.
    use workloads::population::{generate, PopulationConfig};

    let pop = generate(
        &PopulationConfig {
            size: 150,
            ..Default::default()
        },
        17,
    );
    let mut sim = Simulation::new(PlatformConfig::paper_testbed(18));
    let mut rng = SimRng::new(19);
    let horizon = SimTime::from_secs(20.0);
    let mut ls_ids = Vec::new();
    for (i, member) in pop.iter().enumerate() {
        let placement = vec![vec![PlacementDecision {
            server: i % 8,
            socket: (i / 8) % 4,
        }]];
        let arrivals = if member.workload.class == workloads::WorkloadClass::LatencySensitive {
            // Popularity-weighted rate over a 60-rps aggregate budget.
            let rps = (member.popularity * 60.0 * pop.len() as f64 / 10.0).clamp(0.05, 10.0);
            ArrivalSpec::OpenLoop(poisson_arrivals(rps, horizon, &mut rng))
        } else {
            ArrivalSpec::Jobs(vec![SimTime::from_secs((i % 10) as f64)])
        };
        let id = sim.deploy(Deployment {
            workload: member.workload.clone(),
            placement,
            arrivals,
        });
        if member.workload.class == workloads::WorkloadClass::LatencySensitive {
            ls_ids.push(id.0);
        }
    }
    assert_eq!(sim.instance_count(), 150);
    sim.run_until(SimTime::from_secs(40.0));
    let r = sim.report();
    // Conservation across the whole population.
    let mut total_arrivals = 0u64;
    let mut total_completions = 0u64;
    for w in &r.workloads {
        total_arrivals += w.arrivals;
        total_completions += w.completions;
    }
    assert!(
        total_arrivals > 300,
        "population saw {total_arrivals} arrivals"
    );
    assert!(
        total_completions as f64 >= 0.95 * total_arrivals as f64,
        "{total_completions}/{total_arrivals} completed"
    );
    // 150 deployed instances sit past the gateway knee (110): mean forward
    // exceeds the unloaded 0.3 ms base.
    let fwd = &r.gateway_forward_ms;
    let mean = fwd.iter().sum::<f64>() / fwd.len() as f64;
    assert!(
        mean > 0.5,
        "gateway should be past its knee at 150 instances: mean {mean} ms"
    );
    // Function density on a full cluster is high (instances per core).
    // (Active servers shrink as BG jobs finish, so the per-active-core
    // density can exceed 1 — the high-density regime the paper targets.)
    let density = r.utilization.last().unwrap().function_density;
    assert!((0.4..=4.0).contains(&density), "density {density}");
}

#[test]
fn live_socket_migration_restores_victim_mid_run() {
    // The paper's Observation 5 control action, applied *during* a run:
    // the corunner is migrated to another socket halfway through, and the
    // victim's latencies in the second half must recover.
    let mut config = PlatformConfig::paper_testbed(9);
    config.cluster = cluster::ClusterConfig::homogeneous(1, cluster::ServerSpec::paper_node());
    let mut sim = Simulation::new(config);
    let victim = workloads::socialnetwork::message_posting();
    // Victim function ⑨ (get-followers) on socket 0, others on 1..3.
    let placement: Vec<Vec<PlacementDecision>> = (0..9)
        .map(|node| {
            vec![PlacementDecision {
                server: 0,
                socket: if node == 8 { 0 } else { 1 + node % 3 },
            }]
        })
        .collect();
    let mut rng = SimRng::new(10);
    sim.deploy(Deployment {
        workload: victim,
        placement,
        arrivals: ArrivalSpec::OpenLoop(poisson_arrivals(40.0, SimTime::from_secs(60.0), &mut rng)),
    });
    // Aggressor: matmul jobs on socket 0, resubmitted through the window.
    let mm = workloads::functionbench::matrix_multiplication();
    let mm_id = sim.deploy(Deployment {
        workload: mm,
        placement: vec![vec![PlacementDecision {
            server: 0,
            socket: 0,
        }]],
        arrivals: ArrivalSpec::Jobs(vec![SimTime::ZERO, SimTime::from_secs(125.0)]),
    });

    // First half: interfered.
    sim.run_until(SimTime::from_secs(30.0));
    let halfway = sim.report().workloads[0].functions[8]
        .local_latencies_ms
        .len();
    // Local control: move the aggressor's instances to socket 3.
    sim.migrate_node_socket(mm_id, 0, 3);
    sim.run_until(SimTime::from_secs(60.0));

    let lats = &sim.report().workloads[0].functions[8].local_latencies_ms;
    let before = simcore::percentile(&lats[halfway / 2..halfway], 90.0);
    let after = simcore::percentile(&lats[halfway + (lats.len() - halfway) / 2..], 90.0);
    assert!(
        after < before * 0.9,
        "migration should restore the victim: p90 {before} -> {after}"
    );
}

#[test]
fn keep_alive_controls_cold_starts() {
    let mut config = PlatformConfig::paper_testbed(7);
    config.keep_alive = SimTime::from_secs(30.0);
    let mut sim = Simulation::new(config);
    let w = workloads::functionbench::float_operation();
    let placement = place_all(&w, 0);
    // Three invocations: t=0 (cold), t=10 (warm), t=100 (idle > 30 s: cold).
    sim.deploy(Deployment {
        workload: w,
        placement,
        arrivals: ArrivalSpec::OpenLoop(vec![
            SimTime::ZERO,
            SimTime::from_secs(10.0),
            SimTime::from_secs(100.0),
        ]),
    });
    sim.run_until(SimTime::from_secs(150.0));
    let s = &sim.report().workloads[0];
    assert_eq!(s.completions, 3);
    assert_eq!(s.functions[0].cold_starts, 2);
}
