//! Scheduling integration: the binary-search scheduler and the placers
//! against simulator-derived ground truth (not hand-built toys).

use baselines::ScenarioPredictor;
use cluster::{ClusterConfig, Demand};
use experiments::corpus::{run_colocation, ColoSetup, ProfileBook};
use experiments::fig9::gsight_with;
use gsight::QosTarget;
use mlcore::ModelKind;
use sched::binary_search_placement;
use simcore::rng::seed_stream;
use simcore::{SimRng, SimTime};
use std::sync::Arc;

/// Train a predictor on simulator-generated matmul-vs-matmul colocations
/// over a 4-server candidate set.
fn trained_on_simulator() -> (gsight::GsightPredictor, ProfileBook) {
    let mut book = ProfileBook::new();
    book.add(
        &workloads::functionbench::matrix_multiplication(),
        0.0,
        21,
        true,
    );
    let cluster = ClusterConfig::paper_testbed();
    let mm = book.get("matrix-multiplication", 0.0);
    let mut rng = SimRng::new(22);
    let mut samples = Vec::new();
    for i in 0..80 {
        let target = ColoSetup::packed(Arc::clone(&mm), rng.index(4));
        let corun = ColoSetup::packed(Arc::clone(&mm), rng.index(4));
        let out = run_colocation(
            &cluster,
            &[target, corun],
            SimTime::from_secs(20.0),
            seed_stream(23, i),
        );
        samples.push((out.scenario, out.jct_s));
    }
    let mut p = gsight_with(ModelKind::Irfr, QosTarget::JctSecs, 24);
    ScenarioPredictor::bootstrap(&mut p, &samples);
    (p, book)
}

#[test]
fn binary_search_avoids_predicted_violations() {
    let (p, book) = trained_on_simulator();
    let mm = book.get("matrix-multiplication", 0.0);
    let existing = {
        let setup = ColoSetup::packed(Arc::clone(&mm), 0);
        setup.as_colo()
    };
    let new_wl = ColoSetup::packed(Arc::clone(&mm), 0).as_colo();
    let capacity = cluster::ServerSpec::paper_node().total_capacity();
    let headroom = vec![10.0, 20.0, 30.0, 40.0];
    // JCT target: *smaller is better*, so the SLA check needs inversion; we
    // emulate it by predicting with a negated-QoS trick: check both a loose
    // and an impossible bound using the predictor directly.
    let solo = mm.solo_jct_s;
    let packed_pred = p.predict(&gsight::Scenario::new(
        new_wl.clone(),
        vec![existing.clone()],
        8,
    ));
    assert!(
        packed_pred > solo * 1.15,
        "predictor must see packed interference: {packed_pred} vs solo {solo}"
    );
    let mut spread_wl = new_wl.clone();
    spread_wl.placement = vec![2];
    let spread_pred = p.predict(&gsight::Scenario::new(spread_wl, vec![existing.clone()], 8));
    assert!(
        spread_pred < packed_pred,
        "separated placement must predict lower JCT: {spread_pred} vs {packed_pred}"
    );
    // IPC-style binary search API sanity (uses >= semantics): a trivially
    // low bound packs fully.
    let out = binary_search_placement(
        &p,
        &new_wl,
        std::slice::from_ref(&existing),
        8,
        &[0, 1, 2, 3],
        &headroom,
        &capacity,
        f64::NEG_INFINITY,
    )
    .expect("placement");
    assert_eq!(out.spread, 1);
}

#[test]
fn gsight_placer_feeds_live_autoscaling() {
    use experiments::fig11_12::{scheduling_run, Policy};
    let out = scheduling_run(Policy::Gsight(ModelKind::Irfr), true, 31);
    // Scale-outs happened and the run stayed healthy.
    assert!(!out.report.scale_outs.is_empty(), "no autoscaling happened");
    let sn = &out.report.workloads[out.sn_idx];
    assert!(sn.completions as f64 >= 0.95 * sn.arrivals as f64);
    // Utilization accounting produced sane fractions.
    for u in &out.report.utilization {
        for &c in &u.cpu {
            assert!((0.0..=1.0).contains(&c));
        }
        assert!(u.function_density >= 0.0);
    }
}

#[test]
fn worstfit_spreads_gsight_packs() {
    use experiments::fig11_12::{scheduling_run, Policy};
    let g = scheduling_run(Policy::Gsight(ModelKind::Irfr), true, 33);
    let w = scheduling_run(Policy::WorstFit, true, 33);
    let active = |o: &experiments::fig11_12::SchedulingOutcome| {
        o.report
            .utilization
            .last()
            .map(|u| u.cpu.iter().filter(|&&c| c > 0.0).count())
            .unwrap_or(0)
    };
    assert!(
        active(&g) <= active(&w),
        "Gsight should use no more active servers ({} vs {})",
        active(&g),
        active(&w)
    );
    assert!(g.report.density_cdf().mean() > w.report.density_cdf().mean());
}

#[test]
fn demand_normalisation_drives_greedy_order() {
    // The scheduler's "function with maximum resource requirements"
    // heuristic must rank by normalised demand, not raw numbers.
    let capacity = Demand::new(40.0, 272.0, 100.0, 500.0, 1250.0, 256.0);
    let cache_hog = Demand::new(1.0, 0.0, 90.0, 0.0, 0.0, 1.0); // 90 % LLC
    let cpu_mild = Demand::new(10.0, 0.0, 0.0, 0.0, 0.0, 1.0); // 25 % CPU
    assert!(cache_hog.max_normalized(&capacity) > cpu_mild.max_normalized(&capacity));
}
