//! Property tests for the run journal: the TLA-derived ordering invariants
//! must hold on every journal the engine writes, replay must reconstruct
//! the live artifacts byte-for-byte, resume must complete a torn journal
//! bit-identically, and attaching a journal must never perturb the
//! simulation — across many seeds, with faults both on and off.

use experiments::fault_sweep::{chaos_run, chaos_run_sharded, SweepPoint};
use experiments::journal_runs::{
    fault_sweep_spec, replay_bytes, rerun_from_header, resume_bytes, truncate_bytes,
    CHECKPOINT_EVERY_US,
};
use obs::journal::{check_invariants, read_journal, JournalEvent, MemoryJournal};

const QUICK: bool = true;
const FAULTS_OFF: SweepPoint = SweepPoint {
    crash_per_min: 0.0,
    slowdown_per_min: 0.0,
};
const FAULTS_ON: SweepPoint = SweepPoint {
    crash_per_min: 2.0,
    slowdown_per_min: 4.0,
};

/// 20 seeds x {faults off, faults on}: every journal parses strictly,
/// satisfies all ordering invariants, carries checkpoints, and folds back
/// into artifacts that byte-match the live run that wrote it.
#[test]
fn journal_invariants_and_replay_hold_across_twenty_seeds() {
    for seed in 0..20u64 {
        for point in [FAULTS_OFF, FAULTS_ON] {
            let header = fault_sweep_spec(point, seed, QUICK);
            let (bytes, live) = rerun_from_header(&header).expect("journaled run");

            let parsed = read_journal(&bytes).expect("strict parse");
            assert!(parsed.truncated.is_none());
            assert!(!parsed.records.is_empty(), "seed {seed}: empty journal");
            let violations = check_invariants(&parsed.records);
            assert!(
                violations.is_empty(),
                "seed {seed} point {point:?}: ordering invariants violated:\n  {}",
                violations.join("\n  ")
            );
            let checkpoints = parsed
                .records
                .iter()
                .filter(|r| matches!(r.event, JournalEvent::Checkpoint(_)))
                .count();
            assert!(checkpoints > 0, "seed {seed}: no checkpoint records");

            let replay = replay_bytes(&bytes).expect("replay");
            assert_eq!(
                replay.artifacts, live,
                "seed {seed} point {point:?}: replayed artifacts differ from live run"
            );
            assert_eq!(replay.checkpoints, checkpoints);
        }
    }
}

/// Fault events appear in the journal exactly when faults are injected:
/// none at the zero point, some at the chaotic point.
#[test]
fn fault_records_track_the_fault_regime() {
    let seed = 11u64;
    for (point, expect_faults) in [(FAULTS_OFF, false), (FAULTS_ON, true)] {
        let (bytes, _) = rerun_from_header(&fault_sweep_spec(point, seed, QUICK)).unwrap();
        let parsed = read_journal(&bytes).unwrap();
        let faults = parsed
            .records
            .iter()
            .filter(|r| matches!(r.event, JournalEvent::Fault { .. }))
            .count();
        assert_eq!(
            faults > 0,
            expect_faults,
            "point {point:?}: {faults} fault records"
        );
    }
}

/// Resume from a torn tail reproduces the uninterrupted journal and its
/// artifacts bit-identically, at several seeds and truncation points.
#[test]
fn resume_is_bit_identical_across_seeds_and_cut_points() {
    for seed in [3u64, 9, 17] {
        let header = fault_sweep_spec(FAULTS_ON, seed, QUICK);
        let (full, live) = rerun_from_header(&header).expect("journaled run");
        for frac in [0.25, 0.6, 0.95] {
            let torn = truncate_bytes(&full, frac);
            assert!(torn.len() < full.len());
            let resumed =
                resume_bytes(&torn).unwrap_or_else(|e| panic!("seed {seed} frac {frac}: {e}"));
            assert!(resumed.was_truncated);
            assert!(resumed.verified_records <= resumed.total_records);
            assert_eq!(
                resumed.full_journal, full,
                "seed {seed} frac {frac}: resumed journal is not byte-identical"
            );
            assert_eq!(resumed.artifacts, live);
        }
    }
}

/// Resuming an already-complete journal is a no-op that still verifies
/// every record.
#[test]
fn resume_of_complete_journal_verifies_everything() {
    let (full, live) = rerun_from_header(&fault_sweep_spec(FAULTS_ON, 5, QUICK)).unwrap();
    let resumed = resume_bytes(&full).expect("resume of complete journal");
    assert!(!resumed.was_truncated);
    assert_eq!(resumed.verified_records, resumed.total_records);
    assert_eq!(resumed.full_journal, full);
    assert_eq!(resumed.artifacts, live);
}

/// A journal assembled from per-shard buffers merged at barrier boundaries
/// satisfies the same ordering invariants as a serially written one, at
/// every shard count, and still replays into byte-identical artifacts.
#[test]
fn merged_multi_shard_journal_satisfies_invariants_and_replays() {
    let seed = 13u64;
    for shards in [2usize, 4, 8] {
        let spec = fault_sweep_spec(FAULTS_ON, seed, QUICK);
        let journal = MemoryJournal::in_memory(&spec, Some(CHECKPOINT_EVERY_US));
        let bundle = obs::Obs::telemetry_only()
            .with_fault_log()
            .with_journal(Box::new(journal));
        let (out, post) = chaos_run_sharded(FAULTS_ON, seed, QUICK, bundle, Some(shards));
        let bytes = post
            .journal
            .as_ref()
            .and_then(|j| j.as_any().downcast_ref::<MemoryJournal>())
            .map(|j| j.bytes().to_vec())
            .expect("journal bytes");
        let parsed = read_journal(&bytes).expect("strict parse");
        let violations = check_invariants(&parsed.records);
        assert!(
            violations.is_empty(),
            "{shards}-shard journal violates ordering invariants:\n  {}",
            violations.join("\n  ")
        );
        let replay = replay_bytes(&bytes).expect("replay");
        assert_eq!(
            replay.artifacts.report_json,
            out.report.render_json(),
            "{shards}-shard journal must fold back into its own run's report"
        );
        assert_eq!(replay.artifacts.faults_jsonl, out.faults.to_jsonl());
    }
}

/// Barrier-ordering property: in a cross-shard-heavy run, events exchanged
/// at barriers are actually exchanged (`crossed > 0`) and none of them was
/// due before its sender's epoch closed (`min_slack_us >= 0`) — i.e. no
/// cross-shard event can execute inside a still-open window. The
/// window-shrink rule makes the slack non-negative by protocol; this test
/// checks the engine's own accounting of every exchange against that bound.
#[test]
fn cross_shard_events_respect_the_barrier_epoch() {
    for seed in [1u64, 13, 42] {
        let (out, _) = chaos_run_sharded(
            FAULTS_ON,
            seed,
            QUICK,
            obs::Obs::telemetry_only().with_fault_log(),
            Some(8),
        );
        let b = out.barrier.expect("sharded run exposes barrier stats");
        assert!(b.epochs > 0, "seed {seed}: no barrier epochs opened");
        assert!(
            b.crossed > 0,
            "seed {seed}: the 8-shard chaos mix must exchange cross-shard events"
        );
        assert!(
            b.min_slack_us >= 0,
            "seed {seed}: a cross-shard event was due {} us before its \
             sender's epoch closed",
            -b.min_slack_us
        );
    }
}

/// Attaching a journal sink must not perturb the simulation: the journaled
/// run's report and fault log byte-match a plain run at the same seed.
#[test]
fn journaling_does_not_perturb_the_simulation() {
    for seed in [0u64, 7, 42] {
        let plain = chaos_run(FAULTS_ON, seed, QUICK);
        let (_, journaled) = rerun_from_header(&fault_sweep_spec(FAULTS_ON, seed, QUICK)).unwrap();
        assert_eq!(
            plain.report.render_json(),
            journaled.report_json,
            "seed {seed}: journaling changed the run report"
        );
        assert_eq!(plain.faults.to_jsonl(), journaled.faults_jsonl);
        assert_eq!(plain.faults.summary(), journaled.fault_summary);
    }
}
